//! Streaming MRT dump files and the bridge between the simulator's
//! [`BgpUpdate`] records and wire-format MRT — a BGPStream-reader analogue.

use crate::bgp::BgpMessage;
use crate::mrt::MrtRecord;
use crate::wire::Result;
use rrr_types::{BgpElem, BgpUpdate, Ipv4, Timestamp, VpId};
use std::collections::{BTreeMap, HashMap};

/// Maps the simulator's vantage points to (peer IP, peer AS) pairs, as a
/// collector's peer table would.
#[derive(Debug, Clone, Default)]
pub struct VpDirectory {
    /// Indexed by VP id, so registration order is irrelevant.
    peers: BTreeMap<u32, (Ipv4, rrr_types::Asn)>,
    by_ip: HashMap<Ipv4, VpId>,
}

impl VpDirectory {
    /// Registers a vantage point; peer addresses are synthesized in
    /// 172.16.0.0/12 (collector-LAN style) from the VP id itself, so VPs
    /// may arrive in any order — out-of-order registration used to corrupt
    /// `peer_of` silently in release builds.
    pub fn register(&mut self, vp: VpId, asn: rrr_types::Asn) {
        let ip = Ipv4::new(172, 16, (vp.0 >> 8) as u8, (vp.0 & 0xFF) as u8);
        self.peers.insert(vp.0, (ip, asn));
        self.by_ip.insert(ip, vp);
    }

    /// The (peer IP, peer AS) of a registered VP.
    ///
    /// # Panics
    /// Panics if `vp` was never registered.
    pub fn peer_of(&self, vp: VpId) -> (Ipv4, rrr_types::Asn) {
        self.peers[&vp.0]
    }

    pub fn vp_of(&self, peer_ip: Ipv4) -> Option<VpId> {
        self.by_ip.get(&peer_ip).copied()
    }

    pub fn len(&self) -> usize {
        self.peers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// The PEER_INDEX_TABLE record for this directory, peers in VP-id
    /// order.
    pub fn peer_index_record(&self) -> MrtRecord {
        MrtRecord::PeerIndexTable { collector_id: 0, peers: self.peers.values().copied().collect() }
    }
}

/// Writes MRT records into an in-memory dump.
#[derive(Debug, Default)]
pub struct MrtWriter {
    buf: Vec<u8>,
}

impl MrtWriter {
    pub fn new() -> Self {
        MrtWriter::default()
    }

    pub fn write_record(&mut self, r: &MrtRecord) {
        r.encode(&mut self.buf);
    }

    /// Encodes one simulator update as a BGP4MP record.
    pub fn write_update(&mut self, dir: &VpDirectory, u: &BgpUpdate) {
        let (peer_ip, peer_as) = dir.peer_of(u.vp);
        let msg = match &u.elem {
            BgpElem::Announce { path, communities } => {
                BgpMessage::announce(vec![u.prefix], path.clone(), peer_ip, communities.clone())
            }
            BgpElem::Withdraw => BgpMessage::withdraw(vec![u.prefix]),
        };
        self.write_record(&MrtRecord::Bgp4mp {
            time: u.time.as_secs() as u32,
            peer_as,
            local_as: rrr_types::Asn(64_512),
            peer_ip,
            local_ip: Ipv4::new(172, 16, 255, 254),
            msg,
        });
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Iterates records out of an MRT dump.
pub struct MrtReader<'a> {
    buf: &'a [u8],
}

impl<'a> MrtReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        MrtReader { buf }
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }
}

impl Iterator for MrtReader<'_> {
    type Item = Result<MrtRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.buf.is_empty() {
            return None;
        }
        let mut rd = self.buf;
        match MrtRecord::parse(&mut rd) {
            Ok(r) => {
                self.buf = rd;
                Some(Ok(r))
            }
            Err(e) => {
                self.buf = &[]; // stop on error
                Some(Err(e))
            }
        }
    }
}

/// Decodes a BGP4MP record back to simulator updates (one per NLRI /
/// withdrawn prefix), resolving the peer via the directory. Non-update
/// records yield an empty vec.
pub fn record_to_updates(dir: &VpDirectory, r: &MrtRecord) -> Vec<BgpUpdate> {
    let MrtRecord::Bgp4mp { time, peer_ip, msg, .. } = r else {
        return Vec::new();
    };
    let Some(vp) = dir.vp_of(*peer_ip) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for &p in &msg.withdrawn {
        out.push(BgpUpdate {
            time: Timestamp(*time as u64),
            vp,
            prefix: p,
            elem: BgpElem::Withdraw,
        });
    }
    for &p in &msg.nlri {
        out.push(BgpUpdate {
            time: Timestamp(*time as u64),
            vp,
            prefix: p,
            elem: BgpElem::Announce {
                path: msg.attrs.as_path.clone(),
                communities: msg.attrs.communities.clone(),
            },
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrr_types::{AsPath, Asn, Community};

    fn directory(n: u32) -> VpDirectory {
        let mut d = VpDirectory::default();
        for i in 0..n {
            d.register(VpId(i), Asn(100 + i));
        }
        d
    }

    fn sample_updates(dir: &VpDirectory) -> Vec<BgpUpdate> {
        let mut out = Vec::new();
        for i in 0..dir.len() as u32 {
            out.push(BgpUpdate {
                time: Timestamp(1000 + i as u64),
                vp: VpId(i),
                prefix: format!("10.{i}.0.0/16").parse().expect("prefix"),
                elem: BgpElem::Announce {
                    path: AsPath::from_asns([100 + i, 200, 300]),
                    communities: vec![Community::new(200, 50_000 + i)],
                },
            });
        }
        out.push(BgpUpdate {
            time: Timestamp(2000),
            vp: VpId(0),
            prefix: "10.0.0.0/16".parse().expect("prefix"),
            elem: BgpElem::Withdraw,
        });
        out
    }

    #[test]
    fn full_pipeline_roundtrip() {
        let dir = directory(4);
        let updates = sample_updates(&dir);
        let mut w = MrtWriter::new();
        w.write_record(&dir.peer_index_record());
        for u in &updates {
            w.write_update(&dir, u);
        }
        let bytes = w.into_bytes();

        let mut got = Vec::new();
        let mut peer_tables = 0;
        for rec in MrtReader::new(&bytes) {
            let rec = rec.expect("valid stream");
            if matches!(rec, MrtRecord::PeerIndexTable { .. }) {
                peer_tables += 1;
            }
            got.extend(record_to_updates(&dir, &rec));
        }
        assert_eq!(peer_tables, 1);
        assert_eq!(got, updates);
    }

    #[test]
    fn directory_lookup() {
        let dir = directory(300);
        let (ip, asn) = dir.peer_of(VpId(259));
        assert_eq!(asn, Asn(359));
        assert_eq!(dir.vp_of(ip), Some(VpId(259)));
        assert_eq!(dir.vp_of(Ipv4::new(1, 2, 3, 4)), None);
        // 259 = 0x103 → 172.16.1.3
        assert_eq!(ip, Ipv4::new(172, 16, 1, 3));
    }

    #[test]
    fn directory_out_of_order_registration() {
        let mut shuffled = VpDirectory::default();
        for i in [3u32, 0, 2, 1] {
            shuffled.register(VpId(i), Asn(100 + i));
        }
        let ordered = directory(4);
        assert_eq!(shuffled.len(), 4);
        for i in 0..4u32 {
            assert_eq!(shuffled.peer_of(VpId(i)), ordered.peer_of(VpId(i)));
            let (ip, _) = shuffled.peer_of(VpId(i));
            assert_eq!(shuffled.vp_of(ip), Some(VpId(i)));
        }
        // The peer index table is emitted in VP-id order either way.
        assert_eq!(shuffled.peer_index_record(), ordered.peer_index_record());
    }

    #[test]
    fn reader_stops_on_garbage() {
        let dir = directory(1);
        let mut w = MrtWriter::new();
        w.write_update(&dir, &sample_updates(&dir)[0]);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[1, 2, 3]); // trailing garbage
        let results: Vec<_> = MrtReader::new(&bytes).collect();
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }

    #[test]
    fn unknown_peer_ignored() {
        let dir = directory(1);
        let other = directory(2);
        let u = &sample_updates(&other)[1]; // vp 1, not in dir
        let mut w = MrtWriter::new();
        w.write_update(&other, u);
        let bytes = w.into_bytes();
        let rec = MrtReader::new(&bytes).next().expect("one record").expect("valid");
        assert!(record_to_updates(&dir, &rec).is_empty());
    }
}
