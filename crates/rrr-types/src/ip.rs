//! IPv4 addresses and prefixes.
//!
//! We use a thin `u32` wrapper rather than `std::net::Ipv4Addr` so the rest
//! of the workspace can do arithmetic (prefix containment, trie walks,
//! address allocation) without repeated octet conversions, while keeping the
//! familiar dotted-quad `Display`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4 address stored as a host-order `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Raw numeric value.
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }

    /// The octets, most significant first.
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl From<u32> for Ipv4 {
    fn from(v: u32) -> Self {
        Ipv4(v)
    }
}

impl From<[u8; 4]> for Ipv4 {
    fn from(o: [u8; 4]) -> Self {
        Ipv4(u32::from_be_bytes(o))
    }
}

/// Error returned when parsing a prefix or address from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixParseError(pub String);

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for PrefixParseError {}

impl FromStr for Ipv4 {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in octets.iter_mut() {
            let part = parts.next().ok_or_else(|| PrefixParseError(s.into()))?;
            *slot = part.parse().map_err(|_| PrefixParseError(s.into()))?;
        }
        if parts.next().is_some() {
            return Err(PrefixParseError(s.into()));
        }
        Ok(Ipv4::from(octets))
    }
}

/// An IPv4 prefix in CIDR form, always stored normalized (host bits zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    addr: Ipv4,
    len: u8,
}

impl Prefix {
    /// Creates a normalized prefix; host bits below `len` are masked off.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix { addr: Ipv4(addr.0 & Self::mask(len)), len }
    }

    /// The network mask for a given length.
    #[inline]
    pub fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The (masked) network address.
    #[inline]
    pub fn network(self) -> Ipv4 {
        self.addr
    }

    /// Prefix length in bits.
    // A prefix length is not a container length; `is_empty` has no meaning.
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(self) -> u8 {
        self.len
    }

    /// `true` only for the zero-length default route.
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// Whether `ip` falls inside this prefix.
    #[inline]
    pub fn contains(self, ip: Ipv4) -> bool {
        (ip.0 & Self::mask(self.len)) == self.addr.0
    }

    /// Whether `other` is fully contained in (or equal to) this prefix.
    pub fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && self.contains(other.addr)
    }

    /// Number of host addresses in the prefix (saturating for /0).
    pub fn size(self) -> u64 {
        1u64 << (32 - self.len as u64)
    }

    /// The `i`-th address inside the prefix.
    ///
    /// # Panics
    /// Panics if `i` is outside the prefix.
    pub fn nth(self, i: u64) -> Ipv4 {
        assert!(i < self.size(), "address index {i} outside {self}");
        Ipv4(self.addr.0 + i as u32)
    }

    /// Is this prefix more specific than a /24? Such prefixes generally do
    /// not propagate and the paper's pipeline discards them (§4.1.1).
    pub fn more_specific_than_24(self) -> bool {
        self.len > 24
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or_else(|| PrefixParseError(s.into()))?;
        let addr: Ipv4 = addr.parse()?;
        let len: u8 = len.parse().map_err(|_| PrefixParseError(s.into()))?;
        if len > 32 {
            return Err(PrefixParseError(s.into()));
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_display_parse() {
        let p: Prefix = "200.61.128.0/19".parse().unwrap();
        assert_eq!(p.to_string(), "200.61.128.0/19");
        assert_eq!(p.len(), 19);
        let ip: Ipv4 = "200.61.159.255".parse().unwrap();
        assert!(p.contains(ip));
        assert!(!p.contains("200.61.160.0".parse().unwrap()));
    }

    #[test]
    fn normalization_masks_host_bits() {
        let p = Prefix::new(Ipv4::new(10, 1, 2, 3), 16);
        assert_eq!(p.network(), Ipv4::new(10, 1, 0, 0));
        assert_eq!(p.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn covers_and_specificity() {
        let a: Prefix = "10.0.0.0/8".parse().unwrap();
        let b: Prefix = "10.2.0.0/16".parse().unwrap();
        assert!(a.covers(b));
        assert!(!b.covers(a));
        assert!(a.covers(a));
        assert!(!"10.0.0.0/25".parse::<Prefix>().unwrap().covers(b));
        assert!("10.0.0.0/25".parse::<Prefix>().unwrap().more_specific_than_24());
        assert!(!"10.0.0.0/24".parse::<Prefix>().unwrap().more_specific_than_24());
    }

    #[test]
    fn nth_and_size() {
        let p: Prefix = "192.0.2.0/24".parse().unwrap();
        assert_eq!(p.size(), 256);
        assert_eq!(p.nth(1).to_string(), "192.0.2.1");
        assert_eq!(p.nth(255).to_string(), "192.0.2.255");
    }

    #[test]
    #[should_panic]
    fn nth_out_of_range_panics() {
        let p: Prefix = "192.0.2.0/24".parse().unwrap();
        let _ = p.nth(256);
    }

    #[test]
    fn default_route() {
        let d = Prefix::new(Ipv4(0), 0);
        assert!(d.is_default());
        assert!(d.contains(Ipv4::new(8, 8, 8, 8)));
        assert_eq!(Prefix::mask(0), 0);
        assert_eq!(Prefix::mask(32), u32::MAX);
    }

    #[test]
    fn bad_parses() {
        assert!("1.2.3/8".parse::<Prefix>().is_err());
        assert!("1.2.3.4.5/8".parse::<Prefix>().is_err());
        assert!("1.2.3.4/33".parse::<Prefix>().is_err());
        assert!("1.2.3.4".parse::<Prefix>().is_err());
        assert!("300.2.3.4/8".parse::<Prefix>().is_err());
    }
}
