//! Core vocabulary types shared by every crate in the `rrr` workspace.
//!
//! This crate deliberately has no knowledge of simulation, routing policy, or
//! signal generation. It only defines the *data* that flows between the
//! subsystems: autonomous system numbers, IPv4 prefixes, AS paths, BGP
//! communities, timestamps and analysis windows, geographic locations, and
//! the record types for BGP updates and traceroutes.
//!
//! Everything here is `Copy` or cheaply clonable, ordered, hashable, and
//! serde-serializable so records can be persisted by the experiment harness.

pub mod asn;
pub mod community;
pub mod error;
pub mod geo;
pub mod ids;
pub mod intern;
pub mod ip;
pub mod path;
pub mod record;
pub mod time;

pub use asn::Asn;
pub use community::Community;
pub use error::Error;
pub use geo::{CityId, GeoPoint};
pub use ids::{AnchorId, CollectorId, FacilityId, IxpId, PeeringPointId, ProbeId, RouterId, VpId};
pub use intern::{Arena, ArenaId};
pub use ip::{Ipv4, Prefix, PrefixParseError};
pub use path::AsPath;
pub use record::{BgpElem, BgpUpdate, Hop, Traceroute, TracerouteId};
pub use time::{Duration, Timestamp, Window, WindowConfig};
