//! Simulation time, durations, and the fixed-duration analysis windows the
//! signal techniques operate on (§4.1.2 footnote 1, §4.2.1).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Seconds since the start of the simulated measurement campaign.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(pub u64);

/// A span of simulated time, in seconds.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Duration(pub u64);

impl Duration {
    pub const fn secs(s: u64) -> Self {
        Duration(s)
    }
    pub const fn minutes(m: u64) -> Self {
        Duration(m * 60)
    }
    pub const fn hours(h: u64) -> Self {
        Duration(h * 3600)
    }
    pub const fn days(d: u64) -> Self {
        Duration(d * 86_400)
    }
    pub fn as_secs(self) -> u64 {
        self.0
    }
}

impl Timestamp {
    pub const ZERO: Timestamp = Timestamp(0);

    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Integer division: which day of the campaign this instant falls in.
    pub fn day(self) -> u64 {
        self.0 / 86_400
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0 / 86_400;
        let rem = self.0 % 86_400;
        write!(f, "d{:02}+{:02}:{:02}:{:02}", d, rem / 3600, (rem % 3600) / 60, rem % 60)
    }
}

/// A window index under a given [`WindowConfig`] — the unit at which the
/// paper's time series are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Window(pub u64);

impl Window {
    pub fn index(self) -> u64 {
        self.0
    }
    pub fn next(self) -> Window {
        Window(self.0 + 1)
    }
}

/// Fixed-duration windowing of the campaign timeline.
///
/// The paper uses 15 minutes for BGP-derived series (the RouteViews dump
/// cycle) and between 15 minutes and 24 hours for traceroute-derived series,
/// the smallest duration that still yields 20 consecutive populated windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Window duration.
    pub duration: Duration,
}

impl WindowConfig {
    /// The paper's BGP window: 15 minutes.
    pub const BGP: WindowConfig = WindowConfig { duration: Duration::minutes(15) };

    /// Minimum traceroute window duration (§4.2.1).
    pub const MIN_TRACE: Duration = Duration::minutes(15);
    /// Maximum traceroute window duration (§4.2.1).
    pub const MAX_TRACE: Duration = Duration::hours(24);
    /// Minimum consecutive populated windows required before a series is
    /// eligible for outlier detection (§4.2.1, "widely considered as the
    /// minimum recommended number of observations").
    pub const MIN_WINDOWS: usize = 20;

    pub fn new(duration: Duration) -> Self {
        assert!(duration.0 > 0, "window duration must be positive");
        WindowConfig { duration }
    }

    /// The window containing instant `t`.
    pub fn window_of(self, t: Timestamp) -> Window {
        Window(t.0 / self.duration.0)
    }

    /// The half-open interval `[start, end)` of a window.
    pub fn bounds(self, w: Window) -> (Timestamp, Timestamp) {
        (Timestamp(w.0 * self.duration.0), Timestamp((w.0 + 1) * self.duration.0))
    }

    /// Number of whole windows in a campaign of length `total`.
    pub fn count(self, total: Duration) -> u64 {
        total.0 / self.duration.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors() {
        assert_eq!(Duration::minutes(15).as_secs(), 900);
        assert_eq!(Duration::hours(2).as_secs(), 7200);
        assert_eq!(Duration::days(1).as_secs(), 86_400);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp(100) + Duration::secs(50);
        assert_eq!(t, Timestamp(150));
        assert_eq!(t - Timestamp(100), Duration(50));
        // saturating subtraction
        assert_eq!(Timestamp(10) - Timestamp(100), Duration(0));
        let mut t2 = Timestamp::ZERO;
        t2 += Duration::days(2);
        assert_eq!(t2.day(), 2);
    }

    #[test]
    fn windowing() {
        let cfg = WindowConfig::BGP;
        assert_eq!(cfg.window_of(Timestamp(0)), Window(0));
        assert_eq!(cfg.window_of(Timestamp(899)), Window(0));
        assert_eq!(cfg.window_of(Timestamp(900)), Window(1));
        let (s, e) = cfg.bounds(Window(2));
        assert_eq!(s, Timestamp(1800));
        assert_eq!(e, Timestamp(2700));
        assert_eq!(cfg.count(Duration::days(1)), 96);
    }

    #[test]
    fn display_format() {
        assert_eq!(Timestamp(0).to_string(), "d00+00:00:00");
        assert_eq!(Timestamp(90_061).to_string(), "d01+01:01:01");
    }

    #[test]
    #[should_panic]
    fn zero_duration_rejected() {
        let _ = WindowConfig::new(Duration(0));
    }
}
