//! Autonomous system numbers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An autonomous system number (32-bit, per RFC 6793).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl Asn {
    /// `AS0`, used by convention for "no AS" / IXP LAN address space in this
    /// workspace (mirrors how IP-to-AS mapping tools mark IXP prefixes).
    pub const RESERVED: Asn = Asn(0);

    /// Returns `true` if this ASN is in a reserved range (RFC 7607 AS0,
    /// RFC 6996 private-use 64512–65534 and 4200000000–4294967294,
    /// 65535 / 4294967295 last-ASN reservations, 23456 AS_TRANS).
    pub fn is_reserved(self) -> bool {
        matches!(self.0,
            0
            | 23_456
            | 64_512..=65_535
            | 4_200_000_000..=u32::MAX)
    }

    /// Raw numeric value.
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_ranges() {
        assert!(Asn(0).is_reserved());
        assert!(Asn(23_456).is_reserved());
        assert!(Asn(64_512).is_reserved());
        assert!(Asn(65_534).is_reserved());
        assert!(Asn(65_535).is_reserved());
        assert!(Asn(4_200_000_000).is_reserved());
        assert!(Asn(u32::MAX).is_reserved());
        assert!(!Asn(1).is_reserved());
        assert!(!Asn(13_030).is_reserved());
        assert!(!Asn(64_511).is_reserved());
        assert!(!Asn(65_536).is_reserved());
    }

    #[test]
    fn display_and_order() {
        assert_eq!(Asn(1299).to_string(), "AS1299");
        assert!(Asn(1) < Asn(2));
        assert_eq!(Asn::from(7u32).value(), 7);
    }
}
