//! The workspace-wide typed error vocabulary.
//!
//! Subsystems used to surface failures as bare `String`s (invariant
//! violations) or crate-local enums (`rrr_store::StoreError`). [`Error`]
//! gives them one typed home with a [`std::error::Error`] impl, so callers
//! can match on the failure *kind* without parsing prose, and the serving
//! layer can map any of them onto a protocol response. Crates that define
//! their own error types (e.g. `rrr-store`) provide `From` conversions
//! into this enum on their side of the dependency edge.

use std::fmt;
use std::io;

/// Every failure class the workspace surfaces across crate boundaries.
#[derive(Debug)]
pub enum Error {
    /// A cross-structure invariant does not hold (detector or corpus
    /// consistency checks). The message names the first violation.
    Invariant {
        /// Which component's invariant failed (`"corpus"`, `"detector"`…).
        component: &'static str,
        /// The first violation found.
        violation: String,
    },
    /// Durable-state failure, mapped from `rrr_store::StoreError`. The
    /// variant name is preserved so harnesses can match on the kind
    /// without depending on `rrr-store` directly.
    Store {
        /// The `StoreError` variant name (`"CrcMismatch"`, `"BadMagic"`…).
        kind: &'static str,
        /// The rendered error.
        message: String,
    },
    /// A configuration the caller supplied disagrees with recorded or
    /// required state.
    Config { what: String },
    /// Underlying I/O failure outside the durable-store path (sockets,
    /// feed files).
    Io(io::Error),
    /// A malformed request or response on the serving wire protocol.
    Protocol { what: String },
    /// An ingestion feed failed mid-stream (decode error, poisoned
    /// channel, worker panic).
    Feed { what: String },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Invariant { component, violation } => {
                write!(f, "{component} invariant violated: {violation}")
            }
            Error::Store { kind, message } => write!(f, "store error ({kind}): {message}"),
            Error::Config { what } => write!(f, "configuration error: {what}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Protocol { what } => write!(f, "protocol error: {what}"),
            Error::Feed { what } => write!(f, "feed error: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// Constructs an invariant violation for a named component.
    pub fn invariant(component: &'static str, violation: impl Into<String>) -> Error {
        Error::Invariant { component, violation: violation.into() }
    }

    /// Constructs a wire-protocol error.
    pub fn protocol(what: impl Into<String>) -> Error {
        Error::Protocol { what: what.into() }
    }

    /// Constructs a feed-ingestion error.
    pub fn feed(what: impl Into<String>) -> Error {
        Error::Feed { what: what.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = Error::invariant("corpus", "entry 3 has no monitor registration");
        assert!(e.to_string().contains("corpus invariant"));
        assert!(std::error::Error::source(&e).is_none());

        let e = Error::Store { kind: "CrcMismatch", message: "stored 1, computed 2".into() };
        assert!(e.to_string().contains("CrcMismatch"));

        let e = Error::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        assert!(std::error::Error::source(&e).is_some());

        assert!(Error::protocol("bad query").to_string().contains("protocol"));
        assert!(Error::feed("channel closed").to_string().contains("feed"));
    }
}
