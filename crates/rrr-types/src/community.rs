//! BGP communities (RFC 1997) and the geo-encoding convention the paper's
//! community-based staleness technique exploits (§4.1.3).

use crate::{Asn, CityId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A standard 32-bit BGP community `asn:value`.
///
/// By convention the top 16 bits name the AS that defines the community and
/// the low 16 bits carry its meaning (e.g. `13030:51701` = "learned at
/// Telehouse LON-1" in the paper's Figure 3 example).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Community(pub u32);

impl Community {
    /// Builds `asn:value`. Both halves must fit in 16 bits.
    ///
    /// # Panics
    /// Panics if `asn` or `value` exceed `u16::MAX`.
    pub fn new(asn: u32, value: u32) -> Self {
        assert!(asn <= u16::MAX as u32, "community ASN {asn} > 16 bits");
        assert!(value <= u16::MAX as u32, "community value {value} > 16 bits");
        Community((asn << 16) | value)
    }

    /// The AS that defines this community (top 16 bits).
    #[inline]
    pub fn asn(self) -> Asn {
        Asn(self.0 >> 16)
    }

    /// The low 16 bits.
    #[inline]
    pub fn value(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// Geo-community convention used by the simulator: value `GEO_BASE + city`
    /// means "route learned at a border router in `city`". Real networks use
    /// ad-hoc encodings; the detection pipeline never relies on this decoding
    /// (it must *learn* which communities correlate with changes), only the
    /// simulator and tests use it.
    pub const GEO_BASE: u16 = 50_000;

    /// Builds the simulator's geo community for an AS and city.
    pub fn geo(asn: Asn, city: CityId) -> Self {
        Community::new(asn.0, Self::GEO_BASE as u32 + city.0 as u32)
    }

    /// Decodes a geo community back to its city, if it follows the
    /// simulator's convention.
    pub fn geo_city(self) -> Option<CityId> {
        let v = self.value();
        (v >= Self::GEO_BASE).then(|| CityId(v - Self::GEO_BASE))
    }

    /// `true` when the community value is in the simulator's geo range.
    pub fn is_geo(self) -> bool {
        self.value() >= Self::GEO_BASE
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.0 >> 16, self.value())
    }
}

/// Diffs two community sets restricted to the communities *defined by* `asn`
/// (i.e. `asn:xxx`), returning `(added, removed)`.
///
/// The community technique only considers communities defined by an AS that
/// intersects the monitored traceroute (§4.1.3).
pub fn diff_for_asn(
    before: &[Community],
    after: &[Community],
    asn: Asn,
) -> (Vec<Community>, Vec<Community>) {
    let added = after.iter().filter(|c| c.asn() == asn && !before.contains(c)).copied().collect();
    let removed = before.iter().filter(|c| c.asn() == asn && !after.contains(c)).copied().collect();
    (added, removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack() {
        let c = Community::new(13_030, 51_701);
        assert_eq!(c.asn(), Asn(13_030));
        assert_eq!(c.value(), 51_701);
        assert_eq!(c.to_string(), "13030:51701");
    }

    #[test]
    #[should_panic]
    fn asn_overflow_panics() {
        let _ = Community::new(70_000, 1);
    }

    #[test]
    fn geo_roundtrip() {
        let c = Community::geo(Asn(13_030), CityId(7));
        assert!(c.is_geo());
        assert_eq!(c.geo_city(), Some(CityId(7)));
        assert_eq!(c.asn(), Asn(13_030));
        let te = Community::new(13_030, 100);
        assert!(!te.is_geo());
        assert_eq!(te.geo_city(), None);
    }

    #[test]
    fn diff_scoped_to_asn() {
        let a = Asn(10);
        let before = vec![Community::new(10, 1), Community::new(10, 2), Community::new(20, 9)];
        let after = vec![
            Community::new(10, 2),
            Community::new(10, 3),
            Community::new(20, 8), // different AS: ignored
        ];
        let (added, removed) = diff_for_asn(&before, &after, a);
        assert_eq!(added, vec![Community::new(10, 3)]);
        assert_eq!(removed, vec![Community::new(10, 1)]);
    }

    #[test]
    fn diff_empty_when_unchanged() {
        let set = vec![Community::new(10, 1)];
        let (added, removed) = diff_for_asn(&set, &set, Asn(10));
        assert!(added.is_empty() && removed.is_empty());
    }
}
