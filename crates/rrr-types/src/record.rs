//! Measurement record types: BGP updates as seen at a route collector, and
//! traceroutes as issued by a measurement platform.

use crate::{AsPath, Community, Ipv4, Prefix, ProbeId, Timestamp, VpId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The body of a BGP update element.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BgpElem {
    /// A (re-)announcement. A "duplicate update" in the paper's sense is an
    /// `Announce` whose path and communities equal the previously announced
    /// ones — routers emit these when non-transitive attributes (MED, IGP
    /// cost) change (§4.1.4).
    Announce { path: AsPath, communities: Vec<Community> },
    /// A withdrawal of the prefix.
    Withdraw,
}

impl BgpElem {
    /// Returns the AS path for announcements.
    pub fn path(&self) -> Option<&AsPath> {
        match self {
            BgpElem::Announce { path, .. } => Some(path),
            BgpElem::Withdraw => None,
        }
    }

    /// Returns the communities for announcements.
    pub fn communities(&self) -> &[Community] {
        match self {
            BgpElem::Announce { communities, .. } => communities,
            BgpElem::Withdraw => &[],
        }
    }
}

/// One BGP update element received by a collector from a vantage point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpUpdate {
    /// When the collector received the update.
    pub time: Timestamp,
    /// Which collector peer (vantage point) sent it.
    pub vp: VpId,
    /// The prefix the update concerns.
    pub prefix: Prefix,
    /// Announce or withdraw.
    pub elem: BgpElem,
}

impl BgpUpdate {
    /// Convenience: is this an announcement?
    pub fn is_announce(&self) -> bool {
        matches!(self.elem, BgpElem::Announce { .. })
    }
}

impl fmt::Display for BgpUpdate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.elem {
            BgpElem::Announce { path, communities } => {
                write!(f, "{} {} A {} path=[{}]", self.time, self.vp, self.prefix, path)?;
                if !communities.is_empty() {
                    write!(f, " comm=[")?;
                    for (i, c) in communities.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "{c}")?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
            BgpElem::Withdraw => write!(f, "{} {} W {}", self.time, self.vp, self.prefix),
        }
    }
}

/// Unique identifier of a traceroute measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TracerouteId(pub u64);

impl fmt::Display for TracerouteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tr{}", self.0)
    }
}

/// One hop of a traceroute. `None` means the hop did not respond (`*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Hop {
    pub addr: Option<Ipv4>,
}

impl Hop {
    pub fn responsive(ip: Ipv4) -> Self {
        Hop { addr: Some(ip) }
    }
    pub fn star() -> Self {
        Hop { addr: None }
    }
    pub fn is_star(self) -> bool {
        self.addr.is_none()
    }
}

/// A traceroute measurement: source probe, destination, and the hop list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Traceroute {
    pub id: TracerouteId,
    /// The probe that issued the measurement.
    pub probe: ProbeId,
    /// Source address of the probe.
    pub src: Ipv4,
    /// Destination address probed.
    pub dst: Ipv4,
    /// When the traceroute was issued.
    pub time: Timestamp,
    /// IP hops in order, excluding the source, ideally ending at `dst`.
    pub hops: Vec<Hop>,
    /// Whether the destination replied (traceroute completed).
    pub reached: bool,
}

impl Traceroute {
    /// Responsive hop addresses in order.
    pub fn responsive_hops(&self) -> impl Iterator<Item = Ipv4> + '_ {
        self.hops.iter().filter_map(|h| h.addr)
    }

    /// Whether any hop is unresponsive.
    pub fn has_stars(&self) -> bool {
        self.hops.iter().any(|h| h.is_star())
    }

    /// Whether the same responsive address appears twice (an IP-level loop,
    /// a symptom of measurement error; such traces are discarded upstream).
    pub fn has_ip_loop(&self) -> bool {
        let hops: Vec<Ipv4> = self.responsive_hops().collect();
        for (i, h) in hops.iter().enumerate() {
            if hops[i + 1..].contains(h) {
                return true;
            }
        }
        false
    }
}

impl fmt::Display for Traceroute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} -> {} [", self.id, self.time, self.src, self.dst)?;
        for (i, h) in self.hops.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            match h.addr {
                Some(ip) => write!(f, "{ip}")?,
                None => write!(f, "*")?,
            }
        }
        write!(f, "]{}", if self.reached { "" } else { " (incomplete)" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Asn;

    fn ip(s: &str) -> Ipv4 {
        s.parse().unwrap()
    }

    #[test]
    fn bgp_elem_accessors() {
        let a = BgpElem::Announce {
            path: AsPath::from_asns([1, 2, 3]),
            communities: vec![Community::new(1, 2)],
        };
        assert_eq!(a.path().unwrap().origin(), Some(Asn(3)));
        assert_eq!(a.communities().len(), 1);
        assert!(BgpElem::Withdraw.path().is_none());
        assert!(BgpElem::Withdraw.communities().is_empty());
    }

    #[test]
    fn update_display() {
        let u = BgpUpdate {
            time: Timestamp(0),
            vp: VpId(1),
            prefix: "10.0.0.0/24".parse().unwrap(),
            elem: BgpElem::Announce {
                path: AsPath::from_asns([13030, 1299]),
                communities: vec![Community::new(13030, 2)],
            },
        };
        assert!(u.is_announce());
        let s = u.to_string();
        assert!(s.contains("10.0.0.0/24"), "{s}");
        assert!(s.contains("13030 1299"), "{s}");
        assert!(s.contains("13030:2"), "{s}");
        let w = BgpUpdate { elem: BgpElem::Withdraw, ..u };
        assert!(!w.is_announce());
        assert!(w.to_string().contains(" W "));
    }

    #[test]
    fn traceroute_loops_and_stars() {
        let tr = Traceroute {
            id: TracerouteId(1),
            probe: ProbeId(0),
            src: ip("10.0.0.1"),
            dst: ip("10.9.0.1"),
            time: Timestamp(5),
            hops: vec![
                Hop::responsive(ip("10.1.0.1")),
                Hop::star(),
                Hop::responsive(ip("10.2.0.1")),
            ],
            reached: true,
        };
        assert!(tr.has_stars());
        assert!(!tr.has_ip_loop());
        assert_eq!(tr.responsive_hops().count(), 2);
        let mut looped = tr.clone();
        looped.hops.push(Hop::responsive(ip("10.1.0.1")));
        assert!(looped.has_ip_loop());
        assert!(tr.to_string().contains('*'));
    }
}
