//! AS paths and the overlap computations the paper's BGP techniques rely on.

use crate::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A BGP AS path, stored nearest-neighbor first (index 0 is the AS closest
/// to the vantage point; the last element is the origin AS).
///
/// Prepending is preserved as repeated elements; [`AsPath::deduped`] collapses
/// them for hop-level comparisons (the paper merges consecutive identical AS
/// hops, Appendix A).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AsPath(pub Vec<Asn>);

impl AsPath {
    /// Empty path.
    pub fn new() -> Self {
        AsPath(Vec::new())
    }

    /// Builds a path from raw ASN values (nearest first).
    pub fn from_asns<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        AsPath(iter.into_iter().map(Asn).collect())
    }

    /// Number of elements including prepending.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the path has no hops.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The origin AS (last hop) if any.
    pub fn origin(&self) -> Option<Asn> {
        self.0.last().copied()
    }

    /// The AS nearest to the vantage point, if any.
    pub fn head(&self) -> Option<Asn> {
        self.0.first().copied()
    }

    /// Path with consecutive duplicate ASes (prepending) collapsed.
    pub fn deduped(&self) -> AsPath {
        let mut out: Vec<Asn> = Vec::with_capacity(self.0.len());
        for &a in &self.0 {
            if out.last() != Some(&a) {
                out.push(a);
            }
        }
        AsPath(out)
    }

    /// Whether the (deduped) path visits any AS twice — an AS loop.
    /// Traceroutes whose AS mapping contains loops are discarded (Appendix A).
    pub fn has_loop(&self) -> bool {
        let d = self.deduped();
        for (i, a) in d.0.iter().enumerate() {
            if d.0[i + 1..].contains(a) {
                return true;
            }
        }
        false
    }

    /// Returns a copy of the path with every AS in `strip` removed.
    /// Used to drop IXP route-server ASNs from AS paths (§4.1.1).
    pub fn stripped(&self, strip: &[Asn]) -> AsPath {
        AsPath(self.0.iter().copied().filter(|a| !strip.contains(a)).collect())
    }

    /// Like [`AsPath::stripped`], but writes into `out`, reusing its
    /// allocation. Hot loops that strip every incoming update can hold one
    /// scratch path instead of allocating per call.
    pub fn stripped_into(&self, strip: &[Asn], out: &mut AsPath) {
        out.0.clear();
        out.0.extend(self.0.iter().copied().filter(|a| !strip.contains(a)));
    }

    /// Whether the path contains `a` at all.
    pub fn contains(&self, a: Asn) -> bool {
        self.0.contains(&a)
    }

    /// The *first intersection* of this (BGP) path with a traceroute AS path
    /// `tau`: the AS in both paths that is **farthest from the destination**
    /// on `tau` (§4.1.2). Both paths must be destination-last. Returns the
    /// index into `tau` of that AS, or `None` when the paths are disjoint.
    pub fn first_intersection(&self, tau: &[Asn]) -> Option<usize> {
        tau.iter().position(|a| self.contains(*a))
    }

    /// Whether this path's suffix from AS `tau[j]` to the origin traverses
    /// exactly the ASes `tau[j..]` (the "match" condition for
    /// `P_match` in §4.1.2). Prepending on either side is ignored.
    pub fn suffix_matches(&self, tau: &[Asn], j: usize) -> bool {
        let want = dedup_slice(&tau[j..]);
        let d = self.deduped();
        let Some(pos) = d.0.iter().position(|a| *a == want[0]) else {
            return false;
        };
        d.0[pos..] == want[..]
    }

    /// Whether the deduped path ends with the deduped `suffix`.
    pub fn has_suffix(&self, suffix: &[Asn]) -> bool {
        let want = dedup_slice(suffix);
        let d = self.deduped();
        if want.len() > d.0.len() {
            return false;
        }
        d.0[d.0.len() - want.len()..] == want[..]
    }

    /// Iterator over hops nearest-first.
    pub fn iter(&self) -> impl Iterator<Item = Asn> + '_ {
        self.0.iter().copied()
    }
}

fn dedup_slice(s: &[Asn]) -> Vec<Asn> {
    let mut out: Vec<Asn> = Vec::with_capacity(s.len());
    for &a in s {
        if out.last() != Some(&a) {
            out.push(a);
        }
    }
    out
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for a in &self.0 {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}", a.0)?;
            first = false;
        }
        Ok(())
    }
}

impl From<Vec<Asn>> for AsPath {
    fn from(v: Vec<Asn>) -> Self {
        AsPath(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: &[u32]) -> AsPath {
        AsPath::from_asns(v.iter().copied())
    }

    fn asns(v: &[u32]) -> Vec<Asn> {
        v.iter().copied().map(Asn).collect()
    }

    #[test]
    fn dedup_collapses_prepending() {
        assert_eq!(p(&[1, 1, 1, 2, 3, 3]).deduped(), p(&[1, 2, 3]));
        assert_eq!(p(&[]).deduped(), p(&[]));
    }

    #[test]
    fn loop_detection() {
        assert!(!p(&[1, 2, 3]).has_loop());
        assert!(!p(&[1, 1, 2, 3]).has_loop());
        assert!(p(&[1, 2, 1, 3]).has_loop());
        assert!(p(&[4, 2, 3, 2]).has_loop());
    }

    #[test]
    fn strip_ixp_asns() {
        let stripped = p(&[13030, 59900, 1299, 18747]).stripped(&[Asn(59900)]);
        assert_eq!(stripped, p(&[13030, 1299, 18747]));
    }

    #[test]
    fn stripped_into_reuses_buffer() {
        let mut out = p(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let cap = out.0.capacity();
        p(&[13030, 59900, 1299, 18747]).stripped_into(&[Asn(59900)], &mut out);
        assert_eq!(out, p(&[13030, 1299, 18747]));
        assert_eq!(out.0.capacity(), cap, "buffer must be reused, not reallocated");
        p(&[10, 20]).stripped_into(&[], &mut out);
        assert_eq!(out, p(&[10, 20]));
    }

    #[test]
    fn first_intersection_is_farthest_from_destination() {
        // traceroute AS path (source..dest): [10, 20, 30, 40]
        let tau = asns(&[10, 20, 30, 40]);
        // BGP path that shares 20 and 40: first intersection (farthest from
        // the destination 40) is 20 at index 1.
        let bgp = p(&[99, 20, 55, 40]);
        assert_eq!(bgp.first_intersection(&tau), Some(1));
        assert_eq!(p(&[7, 8]).first_intersection(&tau), None);
    }

    #[test]
    fn suffix_match_semantics() {
        let tau = asns(&[10, 20, 30, 40]);
        // matches from index 1: suffix 20 30 40
        assert!(p(&[99, 20, 30, 40]).suffix_matches(&tau, 1));
        // prepending ignored
        assert!(p(&[99, 20, 20, 30, 40, 40]).suffix_matches(&tau, 1));
        // deviation after the intersection
        assert!(!p(&[99, 20, 31, 40]).suffix_matches(&tau, 1));
        // path that rejoins later but skips 30
        assert!(!p(&[99, 20, 40]).suffix_matches(&tau, 1));
        assert!(p(&[20, 30, 40]).suffix_matches(&tau, 1));
    }

    #[test]
    fn has_suffix() {
        assert!(p(&[1, 2, 3, 4]).has_suffix(&asns(&[3, 4])));
        assert!(p(&[1, 2, 3, 4]).has_suffix(&asns(&[1, 2, 3, 4])));
        assert!(!p(&[1, 2, 3, 4]).has_suffix(&asns(&[2, 4])));
        assert!(!p(&[3, 4]).has_suffix(&asns(&[1, 2, 3, 4])));
        // prepended representation on either side
        assert!(p(&[1, 2, 3, 3, 4]).has_suffix(&asns(&[3, 4])));
        assert!(p(&[1, 2, 3, 4]).has_suffix(&asns(&[3, 3, 4])));
    }

    #[test]
    fn display() {
        assert_eq!(p(&[13030, 1299, 2914, 18747]).to_string(), "13030 1299 2914 18747");
    }

    #[test]
    fn accessors() {
        let path = p(&[5, 6, 7]);
        assert_eq!(path.head(), Some(Asn(5)));
        assert_eq!(path.origin(), Some(Asn(7)));
        assert_eq!(path.len(), 3);
        assert!(!path.is_empty());
        assert!(AsPath::new().is_empty());
        assert_eq!(AsPath::new().origin(), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_path() -> impl Strategy<Value = AsPath> {
        proptest::collection::vec(1u32..50, 0..10).prop_map(AsPath::from_asns)
    }

    proptest! {
        /// Dedup is idempotent and never lengthens a path.
        #[test]
        fn dedup_idempotent(p in arb_path()) {
            let d = p.deduped();
            prop_assert!(d.len() <= p.len());
            prop_assert_eq!(d.deduped(), d);
        }

        /// A path always has each of its own suffixes.
        #[test]
        fn own_suffixes_match(p in arb_path()) {
            let d = p.deduped();
            for j in 0..d.len() {
                prop_assert!(d.has_suffix(&d.0[j..]), "{} lacks its own suffix {:?}", d, &d.0[j..]);
            }
        }

        /// Prepending never changes suffix semantics.
        #[test]
        fn prepending_invisible(p in arb_path(), reps in 1usize..4) {
            let mut fat = Vec::new();
            for a in p.iter() {
                for _ in 0..reps {
                    fat.push(a);
                }
            }
            let fat = AsPath(fat);
            let tau: Vec<Asn> = p.deduped().0;
            if !tau.is_empty() {
                prop_assert_eq!(
                    fat.first_intersection(&tau),
                    p.first_intersection(&tau)
                );
                for j in 0..tau.len() {
                    prop_assert_eq!(
                        fat.suffix_matches(&tau, j),
                        p.suffix_matches(&tau, j)
                    );
                }
            }
        }

        /// Stripping removes exactly the stripped ASes and nothing else.
        #[test]
        fn strip_removes_only_targets(p in arb_path(), strip in proptest::collection::vec(1u32..50, 0..4)) {
            let strip: Vec<Asn> = strip.into_iter().map(Asn).collect();
            let out = p.stripped(&strip);
            for a in out.iter() {
                prop_assert!(!strip.contains(&a));
                prop_assert!(p.contains(a));
            }
            for a in p.iter() {
                if !strip.contains(&a) {
                    prop_assert!(out.contains(a));
                }
            }
        }
    }
}
