//! Geography: cities and great-circle distance, used by the router-level
//! border technique (§4.2.2) and the geolocation pipeline (Appendix A).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a city in the topology's city table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CityId(pub u16);

impl fmt::Display for CityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "city{}", self.0)
    }
}

/// A point on the globe, degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    pub lat_deg: f64,
    pub lon_deg: f64,
}

impl GeoPoint {
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        GeoPoint { lat_deg, lon_deg }
    }

    /// Great-circle (haversine) distance in kilometres.
    pub fn distance_km(self, other: GeoPoint) -> f64 {
        const R_EARTH_KM: f64 = 6371.0;
        let (lat1, lon1) = (self.lat_deg.to_radians(), self.lon_deg.to_radians());
        let (lat2, lon2) = (other.lat_deg.to_radians(), other.lon_deg.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * R_EARTH_KM * a.sqrt().asin()
    }

    /// Round-trip time lower bound in milliseconds over fiber (speed of
    /// light in fiber ≈ 2/3 c ≈ 200 km/ms one-way ⇒ 100 km/ms round trip).
    /// A 1 ms RTT therefore bounds distance to ≤100 km (Appendix A).
    pub fn min_rtt_ms(self, other: GeoPoint) -> f64 {
        self.distance_km(other) / 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LONDON: GeoPoint = GeoPoint { lat_deg: 51.5074, lon_deg: -0.1278 };
    const FRANKFURT: GeoPoint = GeoPoint { lat_deg: 50.1109, lon_deg: 8.6821 };
    const NYC: GeoPoint = GeoPoint { lat_deg: 40.7128, lon_deg: -74.0060 };

    #[test]
    fn haversine_known_distances() {
        // London–Frankfurt ≈ 640 km
        let d = LONDON.distance_km(FRANKFURT);
        assert!((600.0..700.0).contains(&d), "got {d}");
        // London–NYC ≈ 5570 km
        let d = LONDON.distance_km(NYC);
        assert!((5400.0..5700.0).contains(&d), "got {d}");
        // symmetric, zero to self
        assert!((LONDON.distance_km(NYC) - NYC.distance_km(LONDON)).abs() < 1e-9);
        assert!(LONDON.distance_km(LONDON) < 1e-9);
    }

    #[test]
    fn rtt_bound() {
        // 100 km => 1 ms RTT floor
        let d = LONDON.distance_km(FRANKFURT);
        assert!((LONDON.min_rtt_ms(FRANKFURT) - d / 100.0).abs() < 1e-12);
    }
}
