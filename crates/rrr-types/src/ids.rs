//! Opaque identifier newtypes used across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $inner:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $inner);

        impl $name {
            /// Raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v as $inner)
            }
        }
    };
}

id_type!(
    /// A router in the simulated topology. Border routers own one or more
    /// interface IPs (aliases).
    RouterId, "r", u32
);
id_type!(
    /// An Internet exchange point.
    IxpId, "ixp", u16
);
id_type!(
    /// A colocation facility within a city.
    FacilityId, "fac", u16
);
id_type!(
    /// One physical interconnection (peering point) between two ASes:
    /// a (city, router pair, interface pair) tuple.
    PeeringPointId, "pp", u32
);
id_type!(
    /// A traceroute vantage point (RIPE Atlas Probe analogue).
    ProbeId, "probe", u32
);
id_type!(
    /// A traceroute target with well-known address (RIPE Atlas Anchor analogue).
    AnchorId, "anchor", u32
);
id_type!(
    /// A BGP route collector (RouteViews / RIS collector analogue).
    CollectorId, "rc", u16
);
id_type!(
    /// A BGP vantage point: a router peering with a collector and feeding it
    /// updates (a "collector peer" in the paper).
    VpId, "vp", u32
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes() {
        assert_eq!(RouterId(3).to_string(), "r3");
        assert_eq!(IxpId(1).to_string(), "ixp1");
        assert_eq!(ProbeId(9).to_string(), "probe9");
        assert_eq!(VpId(0).to_string(), "vp0");
        assert_eq!(PeeringPointId(12).to_string(), "pp12");
    }

    #[test]
    fn conversions() {
        let r: RouterId = 5usize.into();
        assert_eq!(r.index(), 5);
        assert!(RouterId(1) < RouterId(2));
    }
}
