//! A generic intern arena: canonical id-based handles for values that are
//! expensive to clone or compare but repeat heavily in a stream.
//!
//! This extends the `Arc`-interning pattern used for signal keys to the
//! ingestion hot path: instead of handing out `Arc` clones, the arena
//! assigns a dense `u32` id per distinct value, so equality of interned
//! values is an integer comparison and stored state (RIB mirrors, window
//! sample logs) holds `Copy` ids instead of owned vectors.

use std::collections::HashMap;
use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::Arc;

/// A dense handle into an [`Arena<T>`]. Ids are only meaningful within the
/// arena that issued them; within one arena, `a == b` iff the interned
/// values are equal.
pub struct ArenaId<T>(u32, PhantomData<fn() -> T>);

impl<T> ArenaId<T> {
    /// The raw index (diagnostics / dense side tables).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a handle from a raw index, for checkpoint restore: ids are
    /// dense insertion indices, so re-interning the same values in the same
    /// order reproduces them and stored raw indices stay valid. The caller
    /// is responsible for only resolving the handle against an arena that
    /// actually has `index` entries.
    #[inline]
    pub fn from_index(index: u32) -> Self {
        ArenaId(index, PhantomData)
    }
}

// Manual impls: derives would needlessly bound `T`.
impl<T> Clone for ArenaId<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ArenaId<T> {}
impl<T> PartialEq for ArenaId<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<T> Eq for ArenaId<T> {}
impl<T> PartialOrd for ArenaId<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for ArenaId<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}
impl<T> Hash for ArenaId<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}
impl<T> std::fmt::Debug for ArenaId<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ArenaId({})", self.0)
    }
}

/// An append-only intern arena. Each distinct value is stored once (behind
/// an `Arc` shared between the id table and the lookup index) and resolved
/// by [`ArenaId`] in O(1).
#[derive(Debug, Clone, Default)]
pub struct Arena<T: Eq + Hash> {
    items: Vec<Arc<T>>,
    index: HashMap<Arc<T>, u32>,
}

impl<T: Eq + Hash> Arena<T> {
    pub fn new() -> Self {
        Arena { items: Vec::new(), index: HashMap::new() }
    }

    /// The canonical id for `value`, cloning it only on first sight.
    /// Lookup allocates nothing: `Arc<T>: Borrow<T>`.
    pub fn intern(&mut self, value: &T) -> ArenaId<T>
    where
        T: Clone,
    {
        if let Some(&id) = self.index.get(value) {
            return ArenaId(id, PhantomData);
        }
        self.insert_new(value.clone())
    }

    /// Like [`Arena::intern`] but takes ownership, avoiding the clone when
    /// the caller already holds a value it no longer needs.
    pub fn intern_owned(&mut self, value: T) -> ArenaId<T> {
        if let Some(&id) = self.index.get(&value) {
            return ArenaId(id, PhantomData);
        }
        self.insert_new(value)
    }

    fn insert_new(&mut self, value: T) -> ArenaId<T> {
        let id = u32::try_from(self.items.len()).expect("arena overflow");
        let arc = Arc::new(value);
        self.items.push(Arc::clone(&arc));
        self.index.insert(arc, id);
        ArenaId(id, PhantomData)
    }

    /// Resolves an id issued by this arena.
    ///
    /// # Panics
    /// Panics if `id` came from a different arena with more entries.
    #[inline]
    pub fn get(&self, id: ArenaId<T>) -> &T {
        &self.items[id.0 as usize]
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates `(id, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (ArenaId<T>, &T)> {
        self.items.iter().enumerate().map(|(i, v)| (ArenaId(i as u32, PhantomData), &**v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_and_resolves() {
        let mut a: Arena<Vec<u32>> = Arena::new();
        let x = a.intern(&vec![1, 2, 3]);
        let y = a.intern(&vec![1, 2, 3]);
        let z = a.intern(&vec![4]);
        assert_eq!(x, y);
        assert_ne!(x, z);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(x), &vec![1, 2, 3]);
        assert_eq!(a.get(z), &vec![4]);
    }

    #[test]
    fn intern_owned_matches_intern() {
        let mut a: Arena<String> = Arena::new();
        let x = a.intern(&"hello".to_string());
        let y = a.intern_owned("hello".to_string());
        assert_eq!(x, y);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut a: Arena<u64> = Arena::new();
        let ids: Vec<_> = (0..5).map(|i| a.intern(&(i * 10))).collect();
        for (k, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), k);
        }
        assert!(ids[0] < ids[1]);
        let all: Vec<u64> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(all, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn ids_usable_as_map_keys() {
        use std::collections::HashMap;
        let mut a: Arena<&'static str> = Arena::new();
        let x = a.intern(&"k");
        let mut m = HashMap::new();
        m.insert(x, 7);
        assert_eq!(m[&a.intern(&"k")], 7);
    }
}
