//! Zero-overhead observability: a lock-free metrics registry, timing spans,
//! and a Prometheus-style text exposition formatter.
//!
//! Design goals (DESIGN.md §13):
//!
//! * **One relaxed atomic add per event.** Counters are sharded across
//!   cache-line-padded cells so concurrent writers on different cores do not
//!   contend; reads sum the shards.
//! * **Disabled means gone.** A [`Metrics`] handle is a thin
//!   `Option<Arc<MetricsRegistry>>`. When disabled, every derived handle
//!   ([`Counter`], [`Gauge`], [`Histogram`]) carries `None` and each
//!   `inc`/`record` call is a single predictable branch — no allocation, no
//!   clock read, no atomic. This is the `NoopSink` from the issue: the
//!   disabled path compiles to (almost) nothing.
//! * **Provably inert.** Metric state lives entirely outside detector state:
//!   it is never checkpointed, never hashed into `cfg_fingerprint`, and never
//!   consulted by the pipeline. `tests/metrics_inertness.rs` asserts
//!   bit-identical signal logs and checkpoint bytes with metrics on vs. off.
//!
//! Naming conventions: `rrr_<layer>_<what>_total` for counters,
//! `rrr_<layer>_<what>` for gauges, `rrr_<layer>_<stage>_ns` for latency
//! histograms. Labels are baked into the registry key verbatim, e.g.
//! `rrr_detector_steps_total{part="0"}`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of padded cells a counter is sharded over. Eight cells cover the
/// worker-thread counts we actually run (1/2/8) without wasting a page per
/// counter.
const SHARDS: usize = 8;

/// Number of power-of-two histogram buckets. Bucket `i` holds values `v`
/// with `floor(log2(max(v, 1))) == i`, so bucket upper bounds are
/// `2^(i+1) - 1`; 64 buckets cover the full `u64` range.
const BUCKETS: usize = 64;

#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(v);
        }
        v
    })
}

#[derive(Default)]
struct CounterCells {
    shards: [PaddedCell; SHARDS],
}

impl CounterCells {
    fn add(&self, v: u64) {
        self.shards[shard_index()].0.fetch_add(v, Ordering::Relaxed);
    }

    fn value(&self) -> u64 {
        self.shards.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

struct HistCells {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistCells {
    fn default() -> Self {
        HistCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl HistCells {
    fn record(&self, v: u64) {
        let idx = 63 - v.max(1).leading_zeros() as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

enum Slot {
    Counter(Arc<CounterCells>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistCells>),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named metrics. Registration (`counter`/`gauge`/`histogram`)
/// takes a lock and is expected to happen at setup time; the returned handles
/// are lock-free. Registering the same name twice returns handles to the same
/// underlying cells, so re-installing metrics (e.g. after a detector restore)
/// resumes the existing series.
#[derive(Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

/// A cloneable on/off handle to a [`MetricsRegistry`]. The default handle is
/// disabled; all handles derived from it are no-ops.
#[derive(Clone, Default)]
pub struct Metrics {
    reg: Option<Arc<MetricsRegistry>>,
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Metrics").field("enabled", &self.is_enabled()).finish()
    }
}

impl Metrics {
    /// A handle backed by a fresh registry.
    pub fn enabled() -> Metrics {
        Metrics { reg: Some(Arc::new(MetricsRegistry::default())) }
    }

    /// A no-op handle (same as `Metrics::default()`).
    pub fn disabled() -> Metrics {
        Metrics { reg: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.reg.is_some()
    }

    fn slot<F, T>(&self, name: &str, make: F, pick: fn(&Slot) -> Option<T>) -> Option<T>
    where
        F: FnOnce() -> Slot,
    {
        let reg = self.reg.as_ref()?;
        let mut slots = reg.slots.lock().expect("metrics registry poisoned");
        let slot = slots.entry(name.to_string()).or_insert_with(make);
        match pick(slot) {
            Some(t) => Some(t),
            None => panic!("metric `{name}` already registered as a {}", slot.kind()),
        }
    }

    /// Register (or re-attach to) a monotonically increasing counter.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cells: self.slot(
                name,
                || Slot::Counter(Arc::new(CounterCells::default())),
                |s| match s {
                    Slot::Counter(c) => Some(Arc::clone(c)),
                    _ => None,
                },
            ),
        }
    }

    /// Register (or re-attach to) a signed gauge. Gauges are signed so that
    /// transiently racy dec-before-inc interleavings (e.g. queue depth read
    /// between a channel recv and its gauge update) stay well-defined.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.slot(
                name,
                || Slot::Gauge(Arc::new(AtomicI64::new(0))),
                |s| match s {
                    Slot::Gauge(g) => Some(Arc::clone(g)),
                    _ => None,
                },
            ),
        }
    }

    /// Register (or re-attach to) a fixed-bucket log-scale histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram {
            cells: self.slot(
                name,
                || Slot::Histogram(Arc::new(HistCells::default())),
                |s| match s {
                    Slot::Histogram(h) => Some(Arc::clone(h)),
                    _ => None,
                },
            ),
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(reg) = self.reg.as_ref() else {
            return snap;
        };
        let slots = reg.slots.lock().expect("metrics registry poisoned");
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => {
                    snap.counters.insert(name.clone(), c.value());
                }
                Slot::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.load(Ordering::Relaxed));
                }
                Slot::Histogram(h) => {
                    snap.histograms.insert(name.clone(), HistSnapshot::from_cells(h));
                }
            }
        }
        snap
    }

    /// Render every metric in Prometheus-style text exposition format.
    /// Returns an empty string when disabled.
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

/// A monotonically increasing counter handle. Cheap to clone; all clones
/// share the same cells. A handle from a disabled [`Metrics`] is a no-op.
#[derive(Clone, Default)]
pub struct Counter {
    cells: Option<Arc<CounterCells>>,
}

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1)
    }

    #[inline]
    pub fn add(&self, v: u64) {
        if let Some(c) = &self.cells {
            c.add(v);
        }
    }

    pub fn value(&self) -> u64 {
        self.cells.as_ref().map_or(0, |c| c.value())
    }
}

/// A signed gauge handle.
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(c) = &self.cell {
            c.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, v: i64) {
        if let Some(c) = &self.cell {
            c.fetch_add(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn sub(&self, v: i64) {
        self.add(-v)
    }

    pub fn value(&self) -> i64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket power-of-two histogram handle.
#[derive(Clone, Default)]
pub struct Histogram {
    cells: Option<Arc<HistCells>>,
}

impl Histogram {
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(c) = &self.cells {
            c.record(v);
        }
    }

    /// Start a timing span; the elapsed nanoseconds are recorded when the
    /// returned guard drops. No clock is read when the histogram is disabled.
    #[inline]
    pub fn span(&self) -> Span {
        Span { inner: self.cells.as_ref().map(|c| (Arc::clone(c), Instant::now())) }
    }

    pub fn count(&self) -> u64 {
        self.cells.as_ref().map_or(0, |c| c.counts().iter().sum::<u64>())
    }
}

/// A drop-guard that records elapsed wall time into its histogram.
pub struct Span {
    inner: Option<(Arc<HistCells>, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((cells, start)) = self.inner.take() {
            cells.record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

/// A point-in-time histogram summary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub p50: u64,
    pub p99: u64,
    /// Per-bucket counts; bucket `i` covers `[2^i, 2^(i+1))` (bucket 0 also
    /// absorbs zero).
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    fn from_cells(h: &HistCells) -> HistSnapshot {
        let counts = h.counts();
        let count: u64 = counts.iter().sum();
        let mut snap = HistSnapshot {
            count,
            sum: h.sum.load(Ordering::Relaxed),
            max: h.max.load(Ordering::Relaxed),
            p50: 0,
            p99: 0,
            buckets: counts.to_vec(),
        };
        snap.p50 = snap.quantile(0.50);
        snap.p99 = snap.quantile(0.99);
        snap
    }

    /// The upper bound of the bucket containing the `q`-quantile observation
    /// (capped at the observed max, which is tracked exactly).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }
}

/// A point-in-time copy of a registry, keyed by full metric name (labels
/// included). Lookup helpers return zero for absent names so assertions can
/// be written against possibly-disabled runs.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms.get(name)
    }

    /// Sum of all counters in a labeled family, e.g.
    /// `counter_family("rrr_detector_steps_total")` sums the bare name plus
    /// every `rrr_detector_steps_total{...}` series.
    pub fn counter_family(&self, base: &str) -> u64 {
        self.counters.iter().filter(|(k, _)| base_name(k) == base).map(|(_, v)| v).sum()
    }

    /// Render in Prometheus-style text exposition format: `# TYPE` comments
    /// per family, one `name value` sample per line, histograms expanded to
    /// cumulative `_bucket{le=...}` series plus `_sum`/`_count`/`_max`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let mut type_line = |out: &mut String, base: &str, kind: &str| {
            if typed.insert(base.to_string()) {
                out.push_str(&format!("# TYPE {base} {kind}\n"));
            }
        };
        for (name, v) in &self.counters {
            type_line(&mut out, base_name(name), "counter");
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            type_line(&mut out, base_name(name), "gauge");
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let base = base_name(name);
            type_line(&mut out, base, "histogram");
            let labels = &name[base.len()..];
            let labels = labels.strip_prefix('{').and_then(|l| l.strip_suffix('}')).unwrap_or("");
            let mut cum = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cum += c;
                let upper = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                if labels.is_empty() {
                    out.push_str(&format!("{base}_bucket{{le=\"{upper}\"}} {cum}\n"));
                } else {
                    out.push_str(&format!("{base}_bucket{{{labels},le=\"{upper}\"}} {cum}\n"));
                }
            }
            if labels.is_empty() {
                out.push_str(&format!("{base}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            } else {
                out.push_str(&format!("{base}_bucket{{{labels},le=\"+Inf\"}} {}\n", h.count));
            }
            out.push_str(&format!(
                "{base}_sum{labels_wrap} {sum}\n",
                labels_wrap = wrap(labels),
                sum = h.sum
            ));
            out.push_str(&format!(
                "{base}_count{labels_wrap} {count}\n",
                labels_wrap = wrap(labels),
                count = h.count
            ));
            out.push_str(&format!(
                "{base}_max{labels_wrap} {max}\n",
                labels_wrap = wrap(labels),
                max = h.max
            ));
        }
        out
    }
}

fn wrap(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

/// The metric name with any `{label="..."}` suffix stripped.
pub fn base_name(name: &str) -> &str {
    match name.find('{') {
        Some(i) => &name[..i],
        None => name,
    }
}

/// Compose a metric name with an optional label set (empty labels = bare
/// name). Instrumentation layers use this so per-partition / per-feed series
/// share one code path with the unlabeled singletons.
pub fn labeled(base: &str, labels: &str) -> String {
    if labels.is_empty() {
        base.to_string()
    } else {
        format!("{base}{{{labels}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_noops() {
        let m = Metrics::disabled();
        let c = m.counter("rrr_test_total");
        let g = m.gauge("rrr_test_gauge");
        let h = m.histogram("rrr_test_ns");
        c.inc();
        c.add(10);
        g.set(5);
        g.add(3);
        h.record(100);
        drop(h.span());
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.count(), 0);
        assert!(m.render().is_empty());
        assert!(m.snapshot().counters.is_empty());
    }

    #[test]
    fn counter_sums_across_threads() {
        let m = Metrics::enabled();
        let c = m.counter("rrr_test_total");
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), 80_000);
        assert_eq!(m.snapshot().counter("rrr_test_total"), 80_000);
    }

    #[test]
    fn same_name_attaches_to_same_cells() {
        let m = Metrics::enabled();
        let a = m.counter("rrr_shared_total");
        let b = m.counter("rrr_shared_total");
        a.add(3);
        b.add(4);
        assert_eq!(a.value(), 7);
        assert_eq!(b.value(), 7);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let m = Metrics::enabled();
        let _ = m.counter("rrr_mixed");
        let _ = m.gauge("rrr_mixed");
    }

    #[test]
    fn gauge_goes_up_and_down() {
        let m = Metrics::enabled();
        let g = m.gauge("rrr_depth");
        g.add(4);
        g.sub(1);
        assert_eq!(g.value(), 3);
        g.set(-2);
        assert_eq!(g.value(), -2);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let m = Metrics::enabled();
        let h = m.histogram("rrr_lat_ns");
        // 90 observations of 10, 9 of 1000, 1 of 100_000.
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..9 {
            h.record(1000);
        }
        h.record(100_000);
        let snap = m.snapshot();
        let hs = snap.histogram("rrr_lat_ns").unwrap();
        assert_eq!(hs.count, 100);
        assert_eq!(hs.sum, 90 * 10 + 9 * 1000 + 100_000);
        assert_eq!(hs.max, 100_000);
        // p50 lands in the bucket holding 10 → upper bound 15.
        assert_eq!(hs.p50, 15);
        // p99 (rank 99) lands in the bucket holding 1000 → upper bound 1023.
        assert_eq!(hs.p99, 1023);
        // p100 is the tracked exact max.
        assert_eq!(hs.quantile(1.0), 100_000);
    }

    #[test]
    fn histogram_zero_values() {
        let m = Metrics::enabled();
        let h = m.histogram("rrr_zero_ns");
        h.record(0);
        h.record(1);
        let snap = m.snapshot();
        let hs = snap.histogram("rrr_zero_ns").unwrap();
        assert_eq!(hs.count, 2);
        assert_eq!(hs.buckets[0], 2);
    }

    #[test]
    fn span_records_elapsed() {
        let m = Metrics::enabled();
        let h = m.histogram("rrr_span_ns");
        {
            let _s = h.span();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        let hs = m.snapshot();
        assert!(hs.histogram("rrr_span_ns").unwrap().sum >= 1_000_000);
    }

    #[test]
    fn render_exposition_shape() {
        let m = Metrics::enabled();
        m.counter("rrr_a_total").add(5);
        m.counter("rrr_a_total{part=\"1\"}").add(7);
        m.gauge("rrr_b").set(-3);
        m.histogram("rrr_c_ns{feed=\"0\"}").record(100);
        let text = m.render();
        assert!(text.contains("# TYPE rrr_a_total counter\n"));
        assert!(text.contains("rrr_a_total 5\n"));
        assert!(text.contains("rrr_a_total{part=\"1\"} 7\n"));
        assert!(text.contains("# TYPE rrr_b gauge\n"));
        assert!(text.contains("rrr_b -3\n"));
        assert!(text.contains("# TYPE rrr_c_ns histogram\n"));
        assert!(text.contains("rrr_c_ns_bucket{feed=\"0\",le=\"127\"} 1\n"));
        assert!(text.contains("rrr_c_ns_bucket{feed=\"0\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("rrr_c_ns_sum{feed=\"0\"} 100\n"));
        assert!(text.contains("rrr_c_ns_count{feed=\"0\"} 1\n"));
        assert!(text.contains("rrr_c_ns_max{feed=\"0\"} 100\n"));
        // The TYPE line for a family appears exactly once.
        assert_eq!(text.matches("# TYPE rrr_a_total counter").count(), 1);
    }

    #[test]
    fn counter_family_sums_labels() {
        let m = Metrics::enabled();
        m.counter("rrr_f_total{part=\"0\"}").add(2);
        m.counter("rrr_f_total{part=\"1\"}").add(3);
        m.counter("rrr_other_total").add(100);
        let snap = m.snapshot();
        assert_eq!(snap.counter_family("rrr_f_total"), 5);
    }

    #[test]
    fn labeled_helper() {
        assert_eq!(labeled("rrr_x_total", ""), "rrr_x_total");
        assert_eq!(labeled("rrr_x_total", "part=\"2\""), "rrr_x_total{part=\"2\"}");
        assert_eq!(base_name("rrr_x_total{part=\"2\"}"), "rrr_x_total");
    }
}
