//! Traceroute processing (Appendix A): longest-prefix IP-to-AS mapping,
//! AS-path extraction with unresponsive-hop patching, inter-AS border
//! inference, and alias resolution.
//!
//! Everything here consumes *measured* data (BGP announcements, traceroutes,
//! the public registry) rather than simulator ground truth, with the single
//! exception of the alias resolver, which plays the role of MIDAR: it is
//! derived from ground truth with a configurable miss rate, because alias
//! resolution is an input the paper obtains from an external service.

pub mod alias;
pub mod borders;
pub mod mapping;
pub mod traceroute;
pub mod trie;

pub use alias::{AliasKey, AliasResolver};
pub use borders::{find_borders, Border};
pub use mapping::{IpOrigin, IpToAsMap};
pub use traceroute::{map_traceroute, AsTrace, StarPatcher};
pub use trie::PrefixTrie;
