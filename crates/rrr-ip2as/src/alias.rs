//! Alias resolution (the MIDAR stand-in, Appendix A).
//!
//! Alias resolution is an input the paper obtains from an external service,
//! so the resolver is derived from topology ground truth with a configurable
//! per-interface miss rate: unresolved interfaces behave as singleton
//! routers, exactly like addresses MIDAR could not group.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrr_topology::Topology;
use rrr_types::{Ipv4, RouterId};
use std::collections::HashMap;

/// The identity of a router as seen through alias resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AliasKey {
    /// Grouped: all aliases of this router share the key.
    Router(RouterId),
    /// Ungrouped: the address stands alone.
    Singleton(Ipv4),
}

impl rrr_store::Persist for AliasKey {
    fn store<W: std::io::Write>(
        &self,
        e: &mut rrr_store::Encoder<W>,
    ) -> Result<(), rrr_store::StoreError> {
        match self {
            AliasKey::Router(r) => {
                e.u8(0)?;
                r.store(e)
            }
            AliasKey::Singleton(ip) => {
                e.u8(1)?;
                ip.store(e)
            }
        }
    }
    fn load<R: std::io::Read>(
        d: &mut rrr_store::Decoder<R>,
    ) -> Result<Self, rrr_store::StoreError> {
        match d.u8()? {
            0 => Ok(AliasKey::Router(rrr_store::Persist::load(d)?)),
            1 => Ok(AliasKey::Singleton(rrr_store::Persist::load(d)?)),
            _ => Err(d.corrupt("alias key tag")),
        }
    }
}

/// Maps interface addresses to router identities.
pub struct AliasResolver {
    resolved: HashMap<Ipv4, RouterId>,
}

impl AliasResolver {
    /// Builds a resolver covering a fraction `1 - miss_prob` of interfaces.
    pub fn from_topology(topo: &Topology, miss_prob: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut resolved = HashMap::new();
        for r in &topo.routers {
            for &ip in &r.ifaces {
                if !rng.gen_bool(miss_prob) {
                    resolved.insert(ip, r.id);
                }
            }
        }
        AliasResolver { resolved }
    }

    /// A perfect resolver (for tests and upper-bound experiments).
    pub fn perfect(topo: &Topology) -> Self {
        Self::from_topology(topo, 0.0, 0)
    }

    /// The router key of an address.
    pub fn key(&self, ip: Ipv4) -> AliasKey {
        match self.resolved.get(&ip) {
            Some(r) => AliasKey::Router(*r),
            None => AliasKey::Singleton(ip),
        }
    }

    /// Whether two addresses are known aliases of the same router.
    pub fn same_router(&self, a: Ipv4, b: Ipv4) -> bool {
        a == b || self.key(a) == self.key(b) && matches!(self.key(a), AliasKey::Router(_))
    }

    /// Number of resolved interfaces.
    pub fn resolved_count(&self) -> usize {
        self.resolved.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrr_topology::{generate, TopologyConfig};

    #[test]
    fn perfect_resolver_groups_all_aliases() {
        let topo = generate(&TopologyConfig::small(5));
        let r = AliasResolver::perfect(&topo);
        for router in &topo.routers {
            for w in router.ifaces.windows(2) {
                assert!(r.same_router(w[0], w[1]));
            }
        }
        let total: usize = topo.routers.iter().map(|r| r.ifaces.len()).sum();
        assert_eq!(r.resolved_count(), total);
    }

    #[test]
    fn missed_interfaces_become_singletons() {
        let topo = generate(&TopologyConfig::small(5));
        let r = AliasResolver::from_topology(&topo, 1.0, 9);
        assert_eq!(r.resolved_count(), 0);
        let some_iface = topo.routers[0].ifaces[0];
        assert_eq!(r.key(some_iface), AliasKey::Singleton(some_iface));
        // An address is trivially its own router.
        assert!(r.same_router(some_iface, some_iface));
        // Two distinct singletons are never the same router.
        let other = topo.routers[1].ifaces[0];
        assert!(!r.same_router(some_iface, other));
    }

    #[test]
    fn partial_miss_rate_in_between() {
        let topo = generate(&TopologyConfig::small(5));
        let total: usize = topo.routers.iter().map(|r| r.ifaces.len()).sum();
        let r = AliasResolver::from_topology(&topo, 0.3, 9);
        assert!(r.resolved_count() > total / 3);
        assert!(r.resolved_count() < total);
    }

    #[test]
    fn deterministic() {
        let topo = generate(&TopologyConfig::small(5));
        let a = AliasResolver::from_topology(&topo, 0.2, 42);
        let b = AliasResolver::from_topology(&topo, 0.2, 42);
        assert_eq!(a.resolved_count(), b.resolved_count());
        for router in &topo.routers {
            for &ip in &router.ifaces {
                assert_eq!(a.key(ip), b.key(ip));
            }
        }
    }
}
