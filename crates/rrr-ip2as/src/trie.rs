//! A binary (Patricia-flavored) prefix trie for longest-prefix matching.

use rrr_types::{Ipv4, Prefix};

/// Node index sentinel.
const NONE: u32 = u32::MAX;

struct Node<T> {
    children: [u32; 2],
    /// Value attached when a prefix terminates here.
    value: Option<T>,
}

/// A prefix trie mapping [`Prefix`]es to values, supporting exact and
/// longest-prefix lookups.
///
/// The implementation is a plain one-bit-per-level binary trie over the
/// prefix bits (at most 32 levels), stored in a flat arena for cache
/// friendliness and trivially safe code.
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        PrefixTrie::new()
    }
}

impl<T> PrefixTrie<T> {
    pub fn new() -> Self {
        PrefixTrie { nodes: vec![Node { children: [NONE; 2], value: None }], len: 0 }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bit(addr: u32, depth: u8) -> usize {
        ((addr >> (31 - depth)) & 1) as usize
    }

    /// Inserts (or replaces) a prefix's value; returns the previous value.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let addr = prefix.network().value();
        let mut cur = 0usize;
        for depth in 0..prefix.len() {
            let b = Self::bit(addr, depth);
            if self.nodes[cur].children[b] == NONE {
                self.nodes.push(Node { children: [NONE; 2], value: None });
                let idx = (self.nodes.len() - 1) as u32;
                self.nodes[cur].children[b] = idx;
            }
            cur = self.nodes[cur].children[b] as usize;
        }
        let old = self.nodes[cur].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes a prefix, returning its value if present.
    pub fn remove(&mut self, prefix: Prefix) -> Option<T> {
        let addr = prefix.network().value();
        let mut cur = 0usize;
        for depth in 0..prefix.len() {
            let b = Self::bit(addr, depth);
            if self.nodes[cur].children[b] == NONE {
                return None;
            }
            cur = self.nodes[cur].children[b] as usize;
        }
        let old = self.nodes[cur].value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let addr = prefix.network().value();
        let mut cur = 0usize;
        for depth in 0..prefix.len() {
            let b = Self::bit(addr, depth);
            if self.nodes[cur].children[b] == NONE {
                return None;
            }
            cur = self.nodes[cur].children[b] as usize;
        }
        self.nodes[cur].value.as_ref()
    }

    /// Longest-prefix match for an address: the most specific stored prefix
    /// containing it.
    pub fn longest_match(&self, ip: Ipv4) -> Option<(Prefix, &T)> {
        let addr = ip.value();
        let mut cur = 0usize;
        let mut best: Option<(u8, &T)> = self.nodes[0].value.as_ref().map(|v| (0, v));
        for depth in 0..32u8 {
            let b = Self::bit(addr, depth);
            let next = self.nodes[cur].children[b];
            if next == NONE {
                break;
            }
            cur = next as usize;
            if let Some(v) = self.nodes[cur].value.as_ref() {
                best = Some((depth + 1, v));
            }
        }
        best.map(|(len, v)| (Prefix::new(ip, len), v))
    }

    /// Iterates over all stored `(prefix, value)` pairs in DFS order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &T)> {
        let mut out = Vec::new();
        let mut stack: Vec<(usize, u32, u8)> = vec![(0, 0, 0)]; // (node, addr, depth)
        while let Some((n, addr, depth)) = stack.pop() {
            if let Some(v) = &self.nodes[n].value {
                out.push((Prefix::new(Ipv4(addr), depth), v));
            }
            for b in [1usize, 0] {
                let c = self.nodes[n].children[b];
                if c != NONE {
                    debug_assert!(depth < 32);
                    let bit = (b as u32) << (31 - depth);
                    stack.push((c as usize, addr | bit, depth + 1));
                }
            }
        }
        out.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(s: &str) -> Prefix {
        s.parse().expect("valid prefix literal")
    }
    fn ip(s: &str) -> Ipv4 {
        s.parse().expect("valid address literal")
    }

    #[test]
    fn basic_lpm() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.1.2.0/24"), 24);
        assert_eq!(t.longest_match(ip("10.1.2.3")).map(|x| *x.1), Some(24));
        assert_eq!(t.longest_match(ip("10.1.9.3")).map(|x| *x.1), Some(16));
        assert_eq!(t.longest_match(ip("10.9.9.9")).map(|x| *x.1), Some(8));
        assert_eq!(t.longest_match(ip("11.0.0.1")), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn matched_prefix_is_reported() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.1.0.0/16"), ());
        let (pfx, _) = t.longest_match(ip("10.1.200.7")).expect("match exists");
        assert_eq!(pfx, p("10.1.0.0/16"));
    }

    #[test]
    fn replace_and_remove() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(p("10.0.0.0/8")), Some(2));
        assert_eq!(t.remove(p("10.0.0.0/8")), None);
        assert!(t.is_empty());
        assert_eq!(t.longest_match(ip("10.0.0.1")), None);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "default");
        assert_eq!(t.longest_match(ip("200.1.2.3")).map(|x| *x.1), Some("default"));
        t.insert(p("200.0.0.0/8"), "specific");
        assert_eq!(t.longest_match(ip("200.1.2.3")).map(|x| *x.1), Some("specific"));
    }

    #[test]
    fn host_routes() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::new(ip("1.2.3.4"), 32), 1);
        assert_eq!(t.longest_match(ip("1.2.3.4")).map(|x| *x.1), Some(1));
        assert_eq!(t.longest_match(ip("1.2.3.5")), None);
        assert_eq!(t.get(Prefix::new(ip("1.2.3.4"), 32)), Some(&1));
    }

    #[test]
    fn iter_roundtrips() {
        let mut t = PrefixTrie::new();
        let prefixes = [p("10.0.0.0/8"), p("10.1.0.0/16"), p("192.168.0.0/24"), p("0.0.0.0/0")];
        for (i, pf) in prefixes.iter().enumerate() {
            t.insert(*pf, i);
        }
        let collected: Vec<Prefix> = t.iter().map(|(pf, _)| pf).collect();
        assert_eq!(collected.len(), prefixes.len());
        for pf in &prefixes {
            assert!(collected.contains(pf));
        }
    }

    proptest! {
        /// LPM agrees with a brute-force scan over stored prefixes.
        #[test]
        fn lpm_matches_bruteforce(
            entries in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..64),
            probe in any::<u32>(),
        ) {
            let mut t = PrefixTrie::new();
            let mut stored: Vec<Prefix> = Vec::new();
            for (addr, len) in entries {
                let pf = Prefix::new(Ipv4(addr), len);
                t.insert(pf, pf);
                if !stored.contains(&pf) {
                    stored.push(pf);
                }
            }
            prop_assert_eq!(t.len(), stored.len());
            let probe = Ipv4(probe);
            let expect = stored
                .iter()
                .filter(|pf| pf.contains(probe))
                .max_by_key(|pf| pf.len())
                .copied();
            let got = t.longest_match(probe).map(|(_, v)| *v);
            prop_assert_eq!(got, expect);
        }

        /// Insert-then-remove restores absence.
        #[test]
        fn insert_remove_inverse(addr in any::<u32>(), len in 0u8..=32, probe in any::<u32>()) {
            let mut t = PrefixTrie::new();
            let pf = Prefix::new(Ipv4(addr), len);
            t.insert(pf, 7u8);
            prop_assert_eq!(t.remove(pf), Some(7));
            prop_assert_eq!(t.longest_match(Ipv4(probe)), None);
        }
    }
}
