//! IP-to-AS mapping built from observed BGP announcements (Appendix A):
//! longest prefix matching over collector RIBs, excluding prefixes more
//! specific than /24, with IXP LAN prefixes mapped to their IXP.

use crate::trie::PrefixTrie;
use rrr_types::{Asn, BgpUpdate, Ipv4, IxpId, Prefix};
use std::collections::BTreeSet;

/// What an address maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpOrigin {
    /// Originated by an AS (for MOAS prefixes, the lowest origin ASN is the
    /// representative; `IpToAsMap::origins` exposes the full set).
    As(Asn),
    /// Inside an IXP LAN (traIXroute-style detection).
    Ixp(IxpId),
}

/// Longest-prefix IP-to-AS map.
pub struct IpToAsMap {
    trie: PrefixTrie<BTreeSet<Asn>>,
    ixp_trie: PrefixTrie<IxpId>,
}

impl Default for IpToAsMap {
    fn default() -> Self {
        IpToAsMap::new()
    }
}

impl IpToAsMap {
    pub fn new() -> Self {
        IpToAsMap { trie: PrefixTrie::new(), ixp_trie: PrefixTrie::new() }
    }

    /// Builds a map from a RIB snapshot / update stream: the origin of each
    /// announced prefix is the last AS of the path. Prefixes more specific
    /// than /24 are discarded (§4.1.1); withdrawals are ignored (mapping
    /// uses the accumulated view, as the paper does with table dumps).
    pub fn from_announcements<'a, I: IntoIterator<Item = &'a BgpUpdate>>(updates: I) -> Self {
        let mut map = IpToAsMap::new();
        for u in updates {
            if let Some(path) = u.elem.path() {
                if let Some(origin) = path.origin() {
                    map.add_origin(u.prefix, origin);
                }
            }
        }
        map
    }

    /// Registers one origination.
    pub fn add_origin(&mut self, prefix: Prefix, origin: Asn) {
        if prefix.more_specific_than_24() {
            return;
        }
        if let Some(set) = self.trie.get(prefix) {
            if set.contains(&origin) {
                return;
            }
        }
        let mut set = self.trie.remove(prefix).unwrap_or_default();
        set.insert(origin);
        self.trie.insert(prefix, set);
    }

    /// Registers an IXP LAN (from the registry; these take precedence over
    /// AS prefixes for addresses they cover).
    pub fn add_ixp_lan(&mut self, prefix: Prefix, ixp: IxpId) {
        self.ixp_trie.insert(prefix, ixp);
    }

    /// Maps an address. IXP LANs win over (coarser or equal) AS prefixes.
    pub fn lookup(&self, ip: Ipv4) -> Option<IpOrigin> {
        if let Some((_, ixp)) = self.ixp_trie.longest_match(ip) {
            return Some(IpOrigin::Ixp(*ixp));
        }
        self.trie
            .longest_match(ip)
            .and_then(|(_, set)| set.iter().next().copied())
            .map(IpOrigin::As)
    }

    /// Full origin set of the most specific covering prefix (MOAS view).
    pub fn origins(&self, ip: Ipv4) -> Option<&BTreeSet<Asn>> {
        self.trie.longest_match(ip).map(|(_, set)| set)
    }

    /// The most specific prefix covering `ip`, if any. This is the prefix a
    /// destination-based monitor should subscribe to (§4.1.1).
    pub fn most_specific_prefix(&self, ip: Ipv4) -> Option<Prefix> {
        self.trie.longest_match(ip).map(|(p, _)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrr_types::{AsPath, BgpElem, Timestamp, VpId};

    fn announce(prefix: &str, path: &[u32]) -> BgpUpdate {
        BgpUpdate {
            time: Timestamp(0),
            vp: VpId(0),
            prefix: prefix.parse().expect("valid prefix"),
            elem: BgpElem::Announce {
                path: AsPath::from_asns(path.iter().copied()),
                communities: vec![],
            },
        }
    }

    #[test]
    fn builds_from_announcements() {
        let updates =
            vec![announce("10.0.0.0/16", &[1, 2, 3]), announce("10.0.4.0/22", &[1, 2, 4])];
        let m = IpToAsMap::from_announcements(&updates);
        assert_eq!(m.lookup("10.0.4.1".parse().expect("ip")), Some(IpOrigin::As(Asn(4))));
        assert_eq!(m.lookup("10.0.100.1".parse().expect("ip")), Some(IpOrigin::As(Asn(3))));
        assert_eq!(m.lookup("11.0.0.1".parse().expect("ip")), None);
        assert_eq!(
            m.most_specific_prefix("10.0.4.1".parse().expect("ip")),
            Some("10.0.4.0/22".parse().expect("prefix"))
        );
    }

    #[test]
    fn rejects_more_specific_than_24() {
        let updates = vec![announce("10.0.0.0/25", &[1, 9])];
        let m = IpToAsMap::from_announcements(&updates);
        assert_eq!(m.lookup("10.0.0.1".parse().expect("ip")), None);
    }

    #[test]
    fn moas_keeps_all_origins() {
        let updates =
            vec![announce("10.0.0.0/16", &[1, 2, 3]), announce("10.0.0.0/16", &[7, 8, 9])];
        let m = IpToAsMap::from_announcements(&updates);
        let set = m.origins("10.0.0.1".parse().expect("ip")).expect("mapped");
        assert_eq!(set.len(), 2);
        assert!(set.contains(&Asn(3)) && set.contains(&Asn(9)));
        // representative = lowest
        assert_eq!(m.lookup("10.0.0.1".parse().expect("ip")), Some(IpOrigin::As(Asn(3))));
    }

    #[test]
    fn ixp_lan_takes_precedence() {
        let mut m = IpToAsMap::new();
        m.add_origin("10.0.0.0/8".parse().expect("prefix"), Asn(5));
        m.add_ixp_lan("10.1.0.0/20".parse().expect("prefix"), IxpId(2));
        assert_eq!(m.lookup("10.1.0.9".parse().expect("ip")), Some(IpOrigin::Ixp(IxpId(2))));
        assert_eq!(m.lookup("10.2.0.9".parse().expect("ip")), Some(IpOrigin::As(Asn(5))));
    }

    #[test]
    fn withdrawals_ignored() {
        let w = BgpUpdate {
            time: Timestamp(0),
            vp: VpId(0),
            prefix: "10.0.0.0/16".parse().expect("prefix"),
            elem: BgpElem::Withdraw,
        };
        let m = IpToAsMap::from_announcements(&[w]);
        assert_eq!(m.lookup("10.0.0.1".parse().expect("ip")), None);
    }
}
