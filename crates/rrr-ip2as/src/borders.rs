//! Inter-AS border inference from mapped traceroutes ("bdrmap-lite",
//! Appendix A): where the AS mapping transitions, both flanking IPs are
//! considered part of the border; an IXP address is itself the border.

use crate::mapping::{IpOrigin, IpToAsMap};
use rrr_types::{Asn, Ipv4, IxpId, Traceroute};

/// One inferred inter-AS border crossing within a traceroute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Border {
    /// Last hop attributed to the near AS.
    pub near_ip: Ipv4,
    /// First hop attributed to the far AS (for IXP crossings, the IXP LAN
    /// address).
    pub far_ip: Ipv4,
    pub near_as: Asn,
    pub far_as: Asn,
    /// Set when the crossing traverses an IXP fabric.
    pub ixp: Option<IxpId>,
    /// Hop indices of `near_ip` / `far_ip` in the traceroute.
    pub near_idx: usize,
    pub far_idx: usize,
}

impl rrr_store::Persist for Border {
    fn store<W: std::io::Write>(
        &self,
        e: &mut rrr_store::Encoder<W>,
    ) -> Result<(), rrr_store::StoreError> {
        self.near_ip.store(e)?;
        self.far_ip.store(e)?;
        self.near_as.store(e)?;
        self.far_as.store(e)?;
        self.ixp.store(e)?;
        self.near_idx.store(e)?;
        self.far_idx.store(e)
    }
    fn load<R: std::io::Read>(
        d: &mut rrr_store::Decoder<R>,
    ) -> Result<Self, rrr_store::StoreError> {
        Ok(Border {
            near_ip: rrr_store::Persist::load(d)?,
            far_ip: rrr_store::Persist::load(d)?,
            near_as: rrr_store::Persist::load(d)?,
            far_as: rrr_store::Persist::load(d)?,
            ixp: rrr_store::Persist::load(d)?,
            near_idx: rrr_store::Persist::load(d)?,
            far_idx: rrr_store::Persist::load(d)?,
        })
    }
}

/// Finds all border crossings in a traceroute.
///
/// The scan walks responsive hops; an AS transition `A → B` yields a border
/// whose far IP is the first hop after the transition — the IXP LAN address
/// when the next hop maps to an IXP (with the far AS taken from the first
/// mapped hop beyond it), otherwise the first hop of `B`. Unmapped and
/// unresponsive hops inside the transition are skipped, matching the
/// merge-across-gaps rule used for AS paths.
pub fn find_borders(tr: &Traceroute, map: &IpToAsMap) -> Vec<Border> {
    // Collect (hop index, ip, origin) for every mapped responsive hop.
    let mapped: Vec<(usize, Ipv4, IpOrigin)> = tr
        .hops
        .iter()
        .enumerate()
        .filter_map(|(i, h)| {
            let ip = h.addr?;
            map.lookup(ip).map(|o| (i, ip, o))
        })
        .collect();

    let mut out = Vec::new();
    let mut near: Option<(usize, Ipv4, Asn)> = None;
    let mut pending_ixp: Option<(usize, Ipv4, IxpId)> = None;

    for &(i, ip, origin) in &mapped {
        match origin {
            IpOrigin::As(asn) => {
                if let Some((ni, nip, nas)) = near {
                    if nas != asn {
                        // Transition: possibly via a recorded IXP hop.
                        if let Some((xi, xip, ixp)) = pending_ixp {
                            out.push(Border {
                                near_ip: nip,
                                far_ip: xip,
                                near_as: nas,
                                far_as: asn,
                                ixp: Some(ixp),
                                near_idx: ni,
                                far_idx: xi,
                            });
                        } else {
                            out.push(Border {
                                near_ip: nip,
                                far_ip: ip,
                                near_as: nas,
                                far_as: asn,
                                ixp: None,
                                near_idx: ni,
                                far_idx: i,
                            });
                        }
                    }
                }
                near = Some((i, ip, asn));
                pending_ixp = None;
            }
            IpOrigin::Ixp(ixp) => {
                pending_ixp = Some((i, ip, ixp));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::IpToAsMap;
    use rrr_types::{Hop, ProbeId, Timestamp, TracerouteId};

    fn ip(s: &str) -> Ipv4 {
        s.parse().expect("valid ip")
    }

    fn tr(hops: &[Option<&str>]) -> Traceroute {
        Traceroute {
            id: TracerouteId(0),
            probe: ProbeId(0),
            src: ip("10.0.0.1"),
            dst: ip("10.3.0.1"),
            time: Timestamp(0),
            hops: hops
                .iter()
                .map(|h| match h {
                    Some(s) => Hop::responsive(ip(s)),
                    None => Hop::star(),
                })
                .collect(),
            reached: true,
        }
    }

    fn test_map() -> IpToAsMap {
        let mut m = IpToAsMap::new();
        m.add_origin("10.0.0.0/16".parse().expect("p"), Asn(100));
        m.add_origin("10.1.0.0/16".parse().expect("p"), Asn(101));
        m.add_origin("10.2.0.0/16".parse().expect("p"), Asn(102));
        m.add_ixp_lan("11.0.0.0/20".parse().expect("p"), IxpId(3));
        m
    }

    #[test]
    fn simple_border() {
        let m = test_map();
        let t = tr(&[Some("10.0.0.2"), Some("10.0.0.3"), Some("10.1.0.1"), Some("10.1.0.2")]);
        let b = find_borders(&t, &m);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].near_ip, ip("10.0.0.3"));
        assert_eq!(b[0].far_ip, ip("10.1.0.1"));
        assert_eq!((b[0].near_as, b[0].far_as), (Asn(100), Asn(101)));
        assert_eq!(b[0].ixp, None);
        assert_eq!((b[0].near_idx, b[0].far_idx), (1, 2));
    }

    #[test]
    fn border_across_star() {
        let m = test_map();
        let t = tr(&[Some("10.0.0.2"), None, Some("10.1.0.1")]);
        let b = find_borders(&t, &m);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].near_ip, ip("10.0.0.2"));
        assert_eq!(b[0].far_ip, ip("10.1.0.1"));
    }

    #[test]
    fn ixp_crossing_uses_lan_ip_as_border() {
        let m = test_map();
        let t = tr(&[Some("10.0.0.2"), Some("11.0.0.7"), Some("10.2.0.1")]);
        let b = find_borders(&t, &m);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].far_ip, ip("11.0.0.7"));
        assert_eq!(b[0].far_as, Asn(102));
        assert_eq!(b[0].ixp, Some(IxpId(3)));
    }

    #[test]
    fn ixp_without_crossing_is_ignored() {
        // IXP hop followed by the same AS again: no border.
        let m = test_map();
        let t = tr(&[Some("10.0.0.2"), Some("11.0.0.7"), Some("10.0.0.9")]);
        assert!(find_borders(&t, &m).is_empty());
    }

    #[test]
    fn multi_border_path() {
        let m = test_map();
        let t = tr(&[
            Some("10.0.0.2"),
            Some("10.1.0.1"),
            Some("10.1.0.9"),
            Some("11.0.0.4"),
            Some("10.2.0.1"),
        ]);
        let b = find_borders(&t, &m);
        assert_eq!(b.len(), 2);
        assert_eq!((b[0].near_as, b[0].far_as), (Asn(100), Asn(101)));
        assert_eq!((b[1].near_as, b[1].far_as), (Asn(101), Asn(102)));
        assert_eq!(b[1].ixp, Some(IxpId(3)));
    }

    #[test]
    fn no_borders_in_single_as() {
        let m = test_map();
        let t = tr(&[Some("10.0.0.2"), Some("10.0.0.3")]);
        assert!(find_borders(&t, &m).is_empty());
    }
}
