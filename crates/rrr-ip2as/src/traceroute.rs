//! Traceroute AS-path extraction and unresponsive-hop patching (Appendix A).

use crate::mapping::{IpOrigin, IpToAsMap};
use rrr_types::{Asn, Ipv4, Traceroute};
use std::collections::{BTreeSet, HashMap};

/// A traceroute mapped to AS granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsTrace {
    /// Merged AS path (consecutive identical hops collapsed, unmapped gaps
    /// bridged, IXP hops treated as glue). First element is the source AS.
    pub path: Vec<Asn>,
    /// For each AS in `path`, the index of the first and last hop (in the
    /// original hop list) that mapped to it.
    pub spans: Vec<(usize, usize)>,
}

impl AsTrace {
    /// Index in `path` of the given AS, if present.
    pub fn position(&self, asn: Asn) -> Option<usize> {
        self.path.iter().position(|a| *a == asn)
    }
}

/// Maps a traceroute to its AS path.
///
/// Rules from Appendix A:
/// - hops are mapped by longest-prefix match; IXP addresses do not
///   contribute AS hops,
/// - consecutive hops in the same AS merge; same-AS hops separated by
///   unmapped/unresponsive hops also merge,
/// - a mapping containing an AS loop disqualifies the traceroute (`None`).
///
/// `src_asn` is the probe's AS (the traceroute's source address may be in
/// unannounced infrastructure space, so the caller supplies it; pass `None`
/// to derive it from `tr.src`).
pub fn map_traceroute(tr: &Traceroute, map: &IpToAsMap, src_asn: Option<Asn>) -> Option<AsTrace> {
    let mut path: Vec<Asn> = Vec::new();
    let mut spans: Vec<(usize, usize)> = Vec::new();

    let push = |asn: Asn, idx: usize, path: &mut Vec<Asn>, spans: &mut Vec<(usize, usize)>| {
        if path.last() == Some(&asn) {
            spans.last_mut().expect("span exists for last AS").1 = idx;
        } else {
            path.push(asn);
            spans.push((idx, idx));
        }
    };

    if let Some(asn) = src_asn.or_else(|| match map.lookup(tr.src) {
        Some(IpOrigin::As(a)) => Some(a),
        _ => None,
    }) {
        push(asn, 0, &mut path, &mut spans);
    }

    for (i, hop) in tr.hops.iter().enumerate() {
        let Some(ip) = hop.addr else { continue };
        match map.lookup(ip) {
            Some(IpOrigin::As(asn)) => push(asn, i, &mut path, &mut spans),
            Some(IpOrigin::Ixp(_)) | None => {}
        }
    }

    // AS loops disqualify the trace.
    for (i, a) in path.iter().enumerate() {
        if path[i + 1..].contains(a) {
            return None;
        }
    }
    Some(AsTrace { path, spans })
}

/// Unresponsive-hop patcher: for each `(prev, next)` responsive pair around
/// a single `*`, tracks every responsive middle ever observed between them;
/// when exactly one is known, the star can be patched (Appendix A).
#[derive(Debug, Default, Clone)]
pub struct StarPatcher {
    observed: HashMap<(Ipv4, Ipv4), BTreeSet<Ipv4>>,
}

impl rrr_store::Persist for StarPatcher {
    fn store<W: std::io::Write>(
        &self,
        e: &mut rrr_store::Encoder<W>,
    ) -> Result<(), rrr_store::StoreError> {
        self.observed.store(e)
    }
    fn load<R: std::io::Read>(
        d: &mut rrr_store::Decoder<R>,
    ) -> Result<Self, rrr_store::StoreError> {
        Ok(StarPatcher { observed: rrr_store::Persist::load(d)? })
    }
}

impl StarPatcher {
    pub fn new() -> Self {
        StarPatcher::default()
    }

    /// Learns responsive triples from a traceroute.
    pub fn learn(&mut self, tr: &Traceroute) {
        for w in tr.hops.windows(3) {
            if let (Some(a), Some(b), Some(c)) = (w[0].addr, w[1].addr, w[2].addr) {
                self.observed.entry((a, c)).or_default().insert(b);
            }
        }
    }

    /// The unique middle hop for `(prev, next)` when exactly one has ever
    /// been observed.
    pub fn unique_middle(&self, prev: Ipv4, next: Ipv4) -> Option<Ipv4> {
        let set = self.observed.get(&(prev, next))?;
        if set.len() == 1 {
            set.iter().next().copied()
        } else {
            None
        }
    }

    /// Returns a copy of the traceroute with single stars patched where the
    /// surrounding pair has a unique known middle. Remaining stars stay as
    /// wildcards.
    pub fn patch(&self, tr: &Traceroute) -> Traceroute {
        let mut out = tr.clone();
        for i in 1..out.hops.len().saturating_sub(1) {
            if out.hops[i].is_star() {
                if let (Some(p), Some(n)) = (out.hops[i - 1].addr, out.hops[i + 1].addr) {
                    if let Some(mid) = self.unique_middle(p, n) {
                        out.hops[i].addr = Some(mid);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrr_types::{Hop, ProbeId, Timestamp, TracerouteId};

    fn ip(s: &str) -> Ipv4 {
        s.parse().expect("valid ip")
    }

    fn tr(hops: &[Option<&str>]) -> Traceroute {
        Traceroute {
            id: TracerouteId(0),
            probe: ProbeId(0),
            src: ip("10.0.0.1"),
            dst: ip("10.3.0.1"),
            time: Timestamp(0),
            hops: hops
                .iter()
                .map(|h| match h {
                    Some(s) => Hop::responsive(ip(s)),
                    None => Hop::star(),
                })
                .collect(),
            reached: true,
        }
    }

    fn test_map() -> IpToAsMap {
        let mut m = IpToAsMap::new();
        m.add_origin("10.0.0.0/16".parse().expect("p"), Asn(100));
        m.add_origin("10.1.0.0/16".parse().expect("p"), Asn(101));
        m.add_origin("10.2.0.0/16".parse().expect("p"), Asn(102));
        m.add_origin("10.3.0.0/16".parse().expect("p"), Asn(103));
        m.add_ixp_lan("11.0.0.0/20".parse().expect("p"), rrr_types::IxpId(0));
        m
    }

    #[test]
    fn merges_consecutive_and_gapped_hops() {
        let m = test_map();
        let t = tr(&[
            Some("10.0.0.2"),
            Some("10.1.0.1"),
            None, // star inside AS 101
            Some("10.1.0.2"),
            Some("10.3.0.1"),
        ]);
        let at = map_traceroute(&t, &m, None).expect("no loop");
        assert_eq!(at.path, vec![Asn(100), Asn(101), Asn(103)]);
        // span of AS 101 covers hops 1..=3 (first and last mapped hop)
        assert_eq!(at.spans[1], (1, 3));
    }

    #[test]
    fn ixp_hops_are_glue() {
        let m = test_map();
        let t = tr(&[Some("10.0.0.2"), Some("11.0.0.5"), Some("10.2.0.1"), Some("10.3.0.1")]);
        let at = map_traceroute(&t, &m, None).expect("no loop");
        assert_eq!(at.path, vec![Asn(100), Asn(102), Asn(103)]);
    }

    #[test]
    fn as_loop_discards() {
        let m = test_map();
        let t = tr(&[Some("10.1.0.1"), Some("10.2.0.1"), Some("10.1.0.9")]);
        assert!(map_traceroute(&t, &m, None).is_none());
    }

    #[test]
    fn src_asn_override() {
        let m = test_map();
        let t = tr(&[Some("10.1.0.1")]);
        let at = map_traceroute(&t, &m, Some(Asn(999))).expect("no loop");
        assert_eq!(at.path, vec![Asn(999), Asn(101)]);
    }

    #[test]
    fn patcher_learns_and_patches_unique_middles() {
        let mut p = StarPatcher::new();
        p.learn(&tr(&[Some("10.0.0.2"), Some("10.1.0.1"), Some("10.2.0.1")]));
        let broken = tr(&[Some("10.0.0.2"), None, Some("10.2.0.1")]);
        let fixed = p.patch(&broken);
        assert_eq!(fixed.hops[1].addr, Some(ip("10.1.0.1")));
        // Ambiguous middles are left alone.
        p.learn(&tr(&[Some("10.0.0.2"), Some("10.1.0.7"), Some("10.2.0.1")]));
        let still = p.patch(&broken);
        assert!(still.hops[1].is_star());
        assert_eq!(p.unique_middle(ip("10.0.0.2"), ip("10.2.0.1")), None);
    }

    #[test]
    fn patcher_ignores_unknown_context() {
        let p = StarPatcher::new();
        let broken = tr(&[Some("10.0.0.2"), None, Some("10.2.0.1")]);
        assert_eq!(p.patch(&broken), broken);
    }
}
