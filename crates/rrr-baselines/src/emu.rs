//! The trace-driven emulation framework (§5.3): per-pair ground-truth
//! timelines, a packet budget, and the strategy interface.

use rrr_trace::CanonicalPath;
use rrr_types::{Duration, Timestamp};

/// Packets a full traceroute costs in the emulation (roughly 3 probes per
/// hop over a ~5-hop path; the precise constant cancels out across
/// approaches since all pay it).
pub const TRACEROUTE_COST: f64 = 15.0;

/// Ground-truth states of one monitored pair over the campaign.
#[derive(Debug, Clone)]
pub struct PathTimeline {
    /// `(from_time, state)`, first entry at the campaign start, sorted.
    pub states: Vec<(Timestamp, CanonicalPath)>,
}

impl PathTimeline {
    /// Index of the state current at `t`.
    pub fn state_index_at(&self, t: Timestamp) -> usize {
        match self.states.binary_search_by_key(&t, |(st, _)| *st) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    pub fn state_at(&self, t: Timestamp) -> &CanonicalPath {
        &self.states[self.state_index_at(t)].1
    }

    /// Number of changes (states after the first).
    pub fn change_count(&self) -> usize {
        self.states.len().saturating_sub(1)
    }
}

/// The emulation world: timelines plus campaign timing.
pub struct EmuWorld {
    pub timelines: Vec<PathTimeline>,
    pub round: Duration,
    pub duration: Duration,
}

impl EmuWorld {
    pub fn pair_count(&self) -> usize {
        self.timelines.len()
    }

    pub fn total_changes(&self) -> usize {
        self.timelines.iter().map(|t| t.change_count()).sum()
    }

    pub fn rounds(&self) -> u64 {
        self.duration.as_secs() / self.round.as_secs()
    }
}

/// Per-round context handed to strategies.
pub struct Ctx<'a> {
    emu: &'a EmuWorld,
    pub now: Timestamp,
    budget: f64,
    /// Each approach's last-observed path per pair.
    stored: &'a mut Vec<CanonicalPath>,
    /// Detected (pair, state index) facts.
    detections: &'a mut Vec<(usize, usize)>,
    /// Rotating element cursor for detection probes.
    probe_cursor: &'a mut Vec<usize>,
}

impl Ctx<'_> {
    pub fn pair_count(&self) -> usize {
        self.emu.pair_count()
    }

    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The approach's current belief about a pair's path.
    pub fn stored(&self, pair: usize) -> &CanonicalPath {
        &self.stored[pair]
    }

    /// Ground truth current state (only for crediting; strategies must not
    /// inspect it directly — they learn through observations).
    fn truth(&self, pair: usize) -> (&CanonicalPath, usize) {
        let tl = &self.emu.timelines[pair];
        let i = tl.state_index_at(self.now);
        (&tl.states[i].1, i)
    }

    fn credit(&mut self, pair: usize, state_idx: usize) {
        if state_idx > 0 && !self.detections.contains(&(pair, state_idx)) {
            self.detections.push((pair, state_idx));
        }
    }

    /// Issues a full traceroute on `pair` if budget allows. Returns whether
    /// the measured path differs from the stored one (`None` = out of
    /// budget). The stored path is refreshed.
    pub fn try_traceroute(&mut self, pair: usize) -> Option<bool> {
        if self.budget < TRACEROUTE_COST {
            return None;
        }
        self.budget -= TRACEROUTE_COST;
        let (cur, idx) = {
            let (c, i) = self.truth(pair);
            (c.clone(), i)
        };
        let changed = cur != self.stored[pair];
        if changed {
            self.credit(pair, idx);
        }
        self.stored[pair] = cur;
        Some(changed)
    }

    /// Issues one TTL-limited detection probe at the next element of the
    /// stored path (DTRACK-style). Returns whether the probe noticed a
    /// difference (`None` = out of budget). Does *not* remap.
    pub fn try_probe(&mut self, pair: usize) -> Option<bool> {
        if self.budget < 1.0 {
            return None;
        }
        self.budget -= 1.0;
        let stored_len = self.stored[pair].crossings.len();
        let cur = self.truth(pair).0.clone();
        if stored_len == 0 || cur.crossings.is_empty() {
            return Some(cur.crossings.len() != stored_len);
        }
        let k = self.probe_cursor[pair] % stored_len;
        self.probe_cursor[pair] += 1;
        let noticed = match cur.crossings.get(k) {
            Some(c) => *c != self.stored[pair].crossings[k],
            None => true,
        };
        Some(noticed || cur.crossings.len() != stored_len)
    }

    /// Overwrites the stored path without measuring (Sibyl patching). When
    /// the patched belief matches ground truth, the current state counts as
    /// detected (the paper's optimistic patching emulation).
    pub fn apply_patch(&mut self, pair: usize, patched: CanonicalPath) {
        let (cur, idx) = {
            let (c, i) = self.truth(pair);
            (c.clone(), i)
        };
        if patched == cur && self.stored[pair] != cur {
            self.credit(pair, idx);
            self.stored[pair] = patched;
        }
    }
}

/// A corpus-maintenance approach under emulation.
pub trait Strategy {
    fn round(&mut self, ctx: &mut Ctx<'_>);
}

/// Emulation outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmuResult {
    pub detected: usize,
    pub total_changes: usize,
}

impl EmuResult {
    pub fn fraction(&self) -> f64 {
        if self.total_changes == 0 {
            0.0
        } else {
            self.detected as f64 / self.total_changes as f64
        }
    }
}

/// Runs a strategy over the emulation at a probing rate of
/// `pps_per_path` packets/second/path (Figure 8's x-axis).
pub fn run_emulation(emu: &EmuWorld, strategy: &mut dyn Strategy, pps_per_path: f64) -> EmuResult {
    let mut stored: Vec<CanonicalPath> =
        emu.timelines.iter().map(|t| t.states[0].1.clone()).collect();
    let mut detections = Vec::new();
    let mut probe_cursor = vec![0usize; emu.pair_count()];
    let per_round = pps_per_path * emu.pair_count() as f64 * emu.round.as_secs() as f64;
    let mut carry = 0.0f64;

    for r in 1..=emu.rounds() {
        let now = Timestamp(r * emu.round.as_secs());
        carry += per_round;
        let mut ctx = Ctx {
            emu,
            now,
            budget: carry,
            stored: &mut stored,
            detections: &mut detections,
            probe_cursor: &mut probe_cursor,
        };
        strategy.round(&mut ctx);
        carry = ctx.budget; // unspent budget carries over
    }

    EmuResult { detected: detections.len(), total_changes: emu.total_changes() }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use rrr_topology::AsIdx;
    use rrr_types::PeeringPointId;

    pub fn path(points: &[u32]) -> CanonicalPath {
        CanonicalPath {
            as_chain: (0..=points.len() as u32).map(AsIdx).collect(),
            crossings: points.iter().map(|p| vec![PeeringPointId(*p)]).collect(),
            reached: true,
        }
    }

    /// A small emulation world: `n` pairs; pair i changes at the listed
    /// (time, new first crossing) entries.
    pub fn world(n: usize, changes: &[(usize, u64, u32)]) -> EmuWorld {
        let mut timelines: Vec<PathTimeline> = (0..n)
            .map(|i| PathTimeline {
                states: vec![(Timestamp(0), path(&[i as u32 * 10 + 1, i as u32 * 10 + 2]))],
            })
            .collect();
        for &(pair, t, p) in changes {
            let mut new = timelines[pair].states.last().expect("non-empty").1.clone();
            new.crossings[0] = vec![PeeringPointId(p)];
            timelines[pair].states.push((Timestamp(t), new));
        }
        EmuWorld { timelines, round: Duration::minutes(15), duration: Duration::days(2) }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::world;
    use super::*;

    struct Greedy; // traceroutes pair 0 every round
    impl Strategy for Greedy {
        fn round(&mut self, ctx: &mut Ctx<'_>) {
            let _ = ctx.try_traceroute(0);
        }
    }

    #[test]
    fn timeline_lookup() {
        let w = world(1, &[(0, 1000, 99)]);
        let tl = &w.timelines[0];
        assert_eq!(tl.state_index_at(Timestamp(0)), 0);
        assert_eq!(tl.state_index_at(Timestamp(999)), 0);
        assert_eq!(tl.state_index_at(Timestamp(1000)), 1);
        assert_eq!(tl.state_index_at(Timestamp(5000)), 1);
        assert_eq!(tl.change_count(), 1);
        assert_eq!(w.total_changes(), 1);
    }

    #[test]
    fn traceroute_detects_current_change() {
        let w = world(2, &[(0, 1000, 99)]);
        let mut s = Greedy;
        let res = run_emulation(&w, &mut s, 1.0);
        assert_eq!(res.detected, 1);
        assert_eq!(res.total_changes, 1);
        assert!((res.fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn short_lived_change_between_observations_missed() {
        // Change at t=1000 reverts at t=1200; a strategy observing hourly
        // misses both (revert restores the stored path).
        struct Hourly;
        impl Strategy for Hourly {
            fn round(&mut self, ctx: &mut Ctx<'_>) {
                if ctx.now.0.is_multiple_of(3600) {
                    let _ = ctx.try_traceroute(0);
                }
            }
        }
        let mut w = world(1, &[(0, 1000, 99)]);
        // revert to original
        let orig = w.timelines[0].states[0].1.clone();
        w.timelines[0].states.push((Timestamp(1200), orig));
        let res = run_emulation(&w, &mut Hourly, 1.0);
        assert_eq!(res.total_changes, 2);
        assert_eq!(res.detected, 0, "short-lived change must be missed");
    }

    #[test]
    fn budget_limits_observations() {
        // pps so low that not even one traceroute per round is possible;
        // carry-over eventually allows some.
        let w = world(4, &[(0, 1000, 99), (1, 2000, 88), (2, 3000, 77)]);
        struct All;
        impl Strategy for All {
            fn round(&mut self, ctx: &mut Ctx<'_>) {
                for p in 0..ctx.pair_count() {
                    if ctx.try_traceroute(p).is_none() {
                        return;
                    }
                }
            }
        }
        let res_low = run_emulation(&w, &mut All, 0.00001);
        let res_high = run_emulation(&w, &mut All, 1.0);
        assert!(res_low.detected < res_high.detected);
        assert_eq!(res_high.detected, 3);
    }

    #[test]
    fn probe_notices_changed_element() {
        let w = world(1, &[(0, 100, 99)]);
        struct Prober {
            noticed: bool,
        }
        impl Strategy for Prober {
            fn round(&mut self, ctx: &mut Ctx<'_>) {
                // probe both elements
                for _ in 0..2 {
                    if let Some(true) = ctx.try_probe(0) {
                        self.noticed = true;
                    }
                }
            }
        }
        let mut p = Prober { noticed: false };
        let _ = run_emulation(&w, &mut p, 1.0);
        assert!(p.noticed, "rotating probes must hit the changed element");
    }

    #[test]
    fn patch_credits_only_correct_beliefs() {
        let w = world(1, &[(0, 100, 99)]);
        struct Patcher;
        impl Strategy for Patcher {
            fn round(&mut self, ctx: &mut Ctx<'_>) {
                // First a wrong patch (no credit), then the right one.
                let mut wrong = ctx.stored(0).clone();
                wrong.crossings[0] = vec![rrr_types::PeeringPointId(1234)];
                ctx.apply_patch(0, wrong);
                let mut right = ctx.stored(0).clone();
                right.crossings[0] = vec![rrr_types::PeeringPointId(99)];
                ctx.apply_patch(0, right);
            }
        }
        let res = run_emulation(&w, &mut Patcher, 0.0);
        assert_eq!(res.detected, 1);
    }
}
