//! DTRACK (Cunha et al., SIGCOMM'11) and its signal-augmented extension
//! DTRACK+SIGNALS (§6.1).
//!
//! DTRACK spends most of its budget on single-packet TTL-limited detection
//! probes, allocated across paths in proportion to each path's estimated
//! probability of having changed since its last observation; a probe that
//! notices a change triggers a full remap. DTRACK+SIGNALS additionally
//! verifies every incoming staleness prediction signal with one detection
//! probe and remaps on confirmation, letting high-precision signals focus
//! the budget.

use crate::emu::{Ctx, Strategy};
use crate::signals::SignalSchedule;
use rrr_types::Timestamp;

/// Per-path change-rate estimator: a smoothed Poisson rate from observed
/// changes per observed time.
#[derive(Debug, Clone)]
struct PathEstimate {
    changes: f64,
    observed_secs: f64,
    last_obs: Timestamp,
}

impl PathEstimate {
    fn new() -> Self {
        PathEstimate { changes: 0.0, observed_secs: 0.0, last_obs: Timestamp(0) }
    }

    /// Estimated probability the path changed since its last observation.
    fn p_change(&self, now: Timestamp) -> f64 {
        // λ with additive smoothing so unobserved paths still get probes.
        let lambda = (self.changes + 0.5) / (self.observed_secs + 86_400.0);
        let dt = (now - self.last_obs).as_secs() as f64;
        1.0 - (-lambda * dt).exp()
    }

    fn record_observation(&mut self, now: Timestamp, changed: bool) {
        self.observed_secs += (now - self.last_obs).as_secs() as f64;
        self.last_obs = now;
        if changed {
            self.changes += 1.0;
        }
    }
}

/// Vanilla DTRACK.
pub struct Dtrack {
    estimates: Vec<PathEstimate>,
}

impl Dtrack {
    pub fn new(pairs: usize) -> Self {
        Dtrack { estimates: vec![PathEstimate::new(); pairs] }
    }

    /// Spends the remaining budget on detection probes ordered by change
    /// probability, remapping on notice.
    fn detection_pass(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now;
        let mut order: Vec<(usize, f64)> =
            self.estimates.iter().enumerate().map(|(i, e)| (i, e.p_change(now))).collect();
        order.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        for (pair, _) in order {
            let Some(noticed) = ctx.try_probe(pair) else { return };
            if noticed {
                let Some(changed) = ctx.try_traceroute(pair) else { return };
                self.estimates[pair].record_observation(now, changed);
            } else {
                self.estimates[pair].record_observation(now, false);
            }
        }
    }
}

impl Strategy for Dtrack {
    fn round(&mut self, ctx: &mut Ctx<'_>) {
        self.detection_pass(ctx);
    }
}

/// DTRACK with staleness prediction signals (§6.1): each due signal gets a
/// one-packet check at the signaled path; confirmation triggers a remap.
/// Leftover budget runs vanilla DTRACK detection.
pub struct DtrackPlusSignals {
    inner: Dtrack,
    schedule: SignalSchedule,
}

impl DtrackPlusSignals {
    pub fn new(pairs: usize, schedule: SignalSchedule) -> Self {
        DtrackPlusSignals { inner: Dtrack::new(pairs), schedule }
    }
}

impl Strategy for DtrackPlusSignals {
    fn round(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now;
        for pair in self.schedule.due(now) {
            let Some(noticed) = ctx.try_probe(pair) else { return };
            if noticed {
                let Some(changed) = ctx.try_traceroute(pair) else { return };
                self.inner.estimates[pair].record_observation(now, changed);
            }
        }
        self.inner.detection_pass(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::run_emulation;
    use crate::emu::testutil::world;
    use crate::simple::RoundRobin;

    #[test]
    fn estimator_prob_grows_with_time_and_rate() {
        let mut e = PathEstimate::new();
        let early = e.p_change(Timestamp(3600));
        let late = e.p_change(Timestamp(86_400 * 5));
        assert!(late > early);
        e.record_observation(Timestamp(86_400), true);
        e.record_observation(Timestamp(86_400 * 2), true);
        let hot = e.p_change(Timestamp(86_400 * 2 + 3600));
        let mut cold = PathEstimate::new();
        cold.record_observation(Timestamp(86_400), false);
        cold.record_observation(Timestamp(86_400 * 2), false);
        let quiet = cold.p_change(Timestamp(86_400 * 2 + 3600));
        assert!(hot > quiet, "changes must raise the estimated rate");
    }

    #[test]
    fn dtrack_beats_round_robin_at_low_budget() {
        // Many stable pairs, a couple of churners: DTRACK's cheap probes
        // keep tabs on everything while round-robin burns 15 packets per
        // pair visit.
        let mut events = Vec::new();
        for k in 0..12u64 {
            events.push((0usize, 3600 * (k + 1), 100 + k as u32));
            events.push((1usize, 5400 * (k + 1), 200 + k as u32));
        }
        let w = world(60, &events);
        let budget = 0.0008; // packets/sec/path — starves round-robin
        let rr = run_emulation(&w, &mut RoundRobin::default(), budget);
        let dt = run_emulation(&w, &mut Dtrack::new(w.pair_count()), budget);
        assert!(dt.detected >= rr.detected, "dtrack {} < round robin {}", dt.detected, rr.detected);
    }

    #[test]
    fn signals_help_dtrack() {
        let mut events = Vec::new();
        for k in 0..10u64 {
            events.push((5usize, 7200 * (k + 1), 300 + k as u32));
        }
        let w = world(40, &events);
        // Perfect signals: fire at each change.
        let sched =
            SignalSchedule::new(events.iter().map(|&(p, t, _)| (Timestamp(t), p)).collect());
        let budget = 0.0008;
        let dt = run_emulation(&w, &mut Dtrack::new(w.pair_count()), budget);
        let dts = run_emulation(&w, &mut DtrackPlusSignals::new(w.pair_count(), sched), budget);
        assert!(
            dts.detected >= dt.detected,
            "signals must not hurt: {} vs {}",
            dts.detected,
            dt.detected
        );
    }
}
