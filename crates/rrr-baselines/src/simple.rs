//! Periodic round-robin measurement and Sibyl-style patching (§5.3).

use crate::emu::{Ctx, Strategy};
use rrr_types::PeeringPointId;
use std::collections::HashMap;

/// Round-robin: cycle through all pairs, re-measuring as budget allows —
/// the Ark / Atlas campaign model.
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl Strategy for RoundRobin {
    fn round(&mut self, ctx: &mut Ctx<'_>) {
        let n = ctx.pair_count();
        if n == 0 {
            return;
        }
        loop {
            let pair = self.cursor % n;
            if ctx.try_traceroute(pair).is_none() {
                return;
            }
            self.cursor += 1;
        }
    }
}

/// Sibyl's patching on top of round-robin (§5.3): when a re-measurement
/// reveals that subpath `s` changed to `s'`, every other stored path
/// traversing `s` is patched to traverse `s'`. The emulation is optimistic,
/// as in the paper: a patch is only applied when it matches ground truth
/// and incorrect patches are not penalized.
#[derive(Debug, Default)]
pub struct Sibyl {
    cursor: usize,
}

impl Strategy for Sibyl {
    fn round(&mut self, ctx: &mut Ctx<'_>) {
        let n = ctx.pair_count();
        if n == 0 {
            return;
        }
        loop {
            let pair = self.cursor % n;
            let before = ctx.stored(pair).clone();
            let Some(changed) = ctx.try_traceroute(pair) else { return };
            self.cursor += 1;
            if !changed {
                continue;
            }
            let after = ctx.stored(pair).clone();
            // Element-level diff: positions where the crossing set changed.
            let mut subst: HashMap<Vec<PeeringPointId>, Vec<PeeringPointId>> = HashMap::new();
            for (old, new) in before.crossings.iter().zip(&after.crossings) {
                if old != new {
                    subst.insert(old.clone(), new.clone());
                }
            }
            if subst.is_empty() {
                continue;
            }
            // Patch every other pair whose belief traverses a changed
            // element.
            for q in 0..n {
                if q == pair {
                    continue;
                }
                let belief = ctx.stored(q);
                if !belief.crossings.iter().any(|c| subst.contains_key(c)) {
                    continue;
                }
                let mut patched = belief.clone();
                for c in patched.crossings.iter_mut() {
                    if let Some(new) = subst.get(c) {
                        *c = new.clone();
                    }
                }
                ctx.apply_patch(q, patched);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::testutil::{path, world};
    use crate::emu::{run_emulation, EmuWorld, PathTimeline};
    use rrr_types::{Duration, Timestamp};

    #[test]
    fn round_robin_covers_everything_with_big_budget() {
        let w = world(5, &[(0, 1000, 99), (3, 50_000, 88)]);
        let res = run_emulation(&w, &mut RoundRobin::default(), 10.0);
        assert_eq!(res.detected, 2);
    }

    #[test]
    fn round_robin_starves_at_tiny_budget() {
        let w = world(50, &[(0, 1000, 99), (30, 2000, 88), (45, 3000, 77)]);
        let res = run_emulation(&w, &mut RoundRobin::default(), 0.00005);
        assert!(res.detected < 3);
    }

    /// Two pairs share a crossing element; a change to that element on one
    /// pair lets Sibyl patch (and credit) the other without measuring it.
    #[test]
    fn sibyl_patches_shared_subpath() {
        let shared = path(&[7, 8]);
        let mut changed = shared.clone();
        changed.crossings[0] = vec![rrr_types::PeeringPointId(70)];
        let timelines = vec![
            PathTimeline {
                states: vec![(Timestamp(0), shared.clone()), (Timestamp(100), changed.clone())],
            },
            PathTimeline { states: vec![(Timestamp(0), shared), (Timestamp(100), changed)] },
        ];
        let w = EmuWorld { timelines, round: Duration::minutes(15), duration: Duration::hours(4) };
        // Budget for ~one traceroute per round: round-robin alone would
        // still find both eventually, so starve it to one pair's worth and
        // compare.
        let rr = run_emulation(&w, &mut RoundRobin::default(), 0.0186); // ≈ 1 trace per 2 rounds... tuned below
        let sy = run_emulation(&w, &mut Sibyl::default(), 0.0186);
        assert!(sy.detected >= rr.detected);
        assert_eq!(sy.detected, 2, "patching must credit the unmeasured twin");
    }
}
