//! Baselines and comparison approaches (§5.3, §6.1, Appendix D): the
//! trace-driven emulation framework, periodic round-robin, Sibyl-style
//! patching, DTRACK, signal-driven refreshing, DTRACK+SIGNALS, and iPlane
//! path splicing.
//!
//! All approaches are emulated against the same pseudo-ground-truth: a
//! per-pair timeline of canonical border-level paths sampled at high rate
//! (the stand-in for the paper's PlanetLab DTRACK dataset). An approach
//! spends a per-round packet budget on full traceroutes (15 packets) or
//! single TTL-limited detection probes (1 packet) and is scored by the
//! fraction of ground-truth changes it detects while they are current.

pub mod dtrack;
pub mod emu;
pub mod iplane;
pub mod signals;
pub mod simple;

pub use dtrack::{Dtrack, DtrackPlusSignals};
pub use emu::{run_emulation, Ctx, EmuResult, EmuWorld, PathTimeline, Strategy, TRACEROUTE_COST};
pub use iplane::{build_splices, valid_splices, PopSequence, Splice};
pub use signals::{optimal_schedule, SignalDriven, SignalSchedule};
pub use simple::{RoundRobin, Sibyl};
