//! Signal-driven refreshing under emulation (§5.3): a schedule of
//! (time, pair) staleness prediction signals drives traceroute issuance.
//! False signals waste budget (the traceroute finds no change), exactly as
//! the paper's emulation charges them.

use crate::emu::{Ctx, EmuWorld, Strategy};
use rrr_types::Timestamp;

/// A time-ordered queue of signal firings resolved to pair indices.
#[derive(Debug, Clone, Default)]
pub struct SignalSchedule {
    /// (time, pair), sorted by time.
    events: Vec<(Timestamp, usize)>,
    cursor: usize,
}

impl SignalSchedule {
    pub fn new(mut events: Vec<(Timestamp, usize)>) -> Self {
        events.sort_by_key(|(t, _)| *t);
        SignalSchedule { events, cursor: 0 }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Pops every signal due at or before `now`.
    pub fn due(&mut self, now: Timestamp) -> Vec<usize> {
        let mut out = Vec::new();
        while self.cursor < self.events.len() && self.events[self.cursor].0 <= now {
            out.push(self.events[self.cursor].1);
            self.cursor += 1;
        }
        out
    }
}

/// Refresh-on-signal: every due signal triggers a traceroute of the
/// signaled pair, budget permitting. Undelivered signals queue up (budget
/// carry-over will eventually drain them or the campaign ends).
pub struct SignalDriven {
    schedule: SignalSchedule,
    backlog: Vec<usize>,
}

impl SignalDriven {
    pub fn new(schedule: SignalSchedule) -> Self {
        SignalDriven { schedule, backlog: Vec::new() }
    }
}

impl Strategy for SignalDriven {
    fn round(&mut self, ctx: &mut Ctx<'_>) {
        self.backlog.extend(self.schedule.due(ctx.now));
        while let Some(&pair) = self.backlog.first() {
            if ctx.try_traceroute(pair).is_none() {
                return;
            }
            self.backlog.remove(0);
        }
    }
}

/// The §5.3 "optimal signals" upper bound: a schedule containing exactly
/// one signal per ground-truth change, at the change time (no false
/// positives, perfect coverage).
pub fn optimal_schedule(emu: &EmuWorld) -> SignalSchedule {
    let mut events = Vec::new();
    for (pair, tl) in emu.timelines.iter().enumerate() {
        for (t, _) in tl.states.iter().skip(1) {
            events.push((*t, pair));
        }
    }
    SignalSchedule::new(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::run_emulation;
    use crate::emu::testutil::world;
    use crate::simple::RoundRobin;

    #[test]
    fn schedule_pops_in_order() {
        let mut s = SignalSchedule::new(vec![
            (Timestamp(500), 2),
            (Timestamp(100), 1),
            (Timestamp(900), 3),
        ]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.due(Timestamp(100)), vec![1]);
        assert_eq!(s.due(Timestamp(100)), Vec::<usize>::new());
        assert_eq!(s.due(Timestamp(1000)), vec![2, 3]);
    }

    #[test]
    fn optimal_signals_detect_everything_with_budget() {
        let w = world(30, &[(0, 1000, 99), (7, 50_000, 88), (22, 100_000, 77)]);
        let mut s = SignalDriven::new(optimal_schedule(&w));
        let res = run_emulation(&w, &mut s, 0.01);
        assert_eq!(res.detected, 3);
        assert_eq!(res.total_changes, 3);
    }

    #[test]
    fn signals_beat_round_robin_under_starvation() {
        // 200 pairs, 3 changes: round-robin wastes budget on unchanged
        // paths; signal-driven goes straight to the changes.
        let w = world(200, &[(0, 1000, 99), (77, 50_000, 88), (150, 100_000, 77)]);
        let budget = 0.00002;
        let rr = run_emulation(&w, &mut RoundRobin::default(), budget);
        let sg = run_emulation(&w, &mut SignalDriven::new(optimal_schedule(&w)), budget);
        assert!(sg.detected > rr.detected, "signals {} <= rr {}", sg.detected, rr.detected);
        assert_eq!(sg.detected, 3);
    }

    #[test]
    fn false_signals_waste_budget() {
        // One real change on pair 0; a storm of false signals on pair 1
        // scheduled earlier eats the budget first.
        let w = world(2, &[(0, 80_000, 99)]);
        let mut events: Vec<(Timestamp, usize)> =
            (0..50u64).map(|k| (Timestamp(1000 + k), 1usize)).collect();
        events.push((Timestamp(80_000), 0));
        let mut s = SignalDriven::new(SignalSchedule::new(events));
        // Budget for ~1 traceroute every 4 rounds: the backlog of false
        // signals delays the real one past... the campaign still long
        // enough to drain, so compare detection *time* indirectly via a
        // tighter budget where it cannot drain.
        let res = run_emulation(&w, &mut s, 0.00004);
        assert_eq!(res.detected, 0, "false-signal backlog must starve the real one");
    }
}
