//! iPlane path splicing (Appendix D): predict the unmeasured path from
//! source `s` to destination `d` by finding corpus traceroutes `(s, d')`
//! and `(s', d)` that intersect at a PoP `p`, and splicing `(s, p, d)`.
//! Staleness invalidates splices silently — unless stale traceroutes are
//! pruned using staleness prediction signals.

use rrr_types::{CityId, ProbeId};
use std::collections::{HashMap, HashSet};

/// A PoP: an ⟨AS, city⟩ tuple (the paper groups IPs to PoPs with IPMap;
/// ungeolocated addresses become their own PoP, which we represent by
/// omission).
pub type Pop = (rrr_types::Asn, CityId);

/// A corpus traceroute reduced to PoP granularity.
#[derive(Debug, Clone)]
pub struct PopSequence {
    pub src: ProbeId,
    pub dst_key: u32,
    pub pops: Vec<Pop>,
}

impl PopSequence {
    pub fn contains(&self, p: &Pop) -> bool {
        self.pops.contains(p)
    }
}

/// A spliced prediction: corpus path `a` (from `src`) and corpus path `b`
/// (to `dst`) meet at `pop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Splice {
    /// Index of the source-side path in the corpus.
    pub a: usize,
    /// Index of the destination-side path.
    pub b: usize,
    pub pop: Pop,
}

/// Builds the splice set over a corpus: all (a, b, pop) with `a` and `b`
/// from different sources/destinations intersecting at `pop`. `max_per_pair`
/// caps splices per (src, dst) combination to keep the set tractable (the
/// paper picks one intersection per prediction).
pub fn build_splices(corpus: &[PopSequence], max_per_pair: usize) -> Vec<Splice> {
    // pop → path indices through it
    let mut through: HashMap<Pop, Vec<usize>> = HashMap::new();
    for (i, seq) in corpus.iter().enumerate() {
        let mut seen = HashSet::new();
        for p in &seq.pops {
            if seen.insert(*p) {
                through.entry(*p).or_default().push(i);
            }
        }
    }
    let mut out = Vec::new();
    let mut per_pair: HashMap<(ProbeId, u32), usize> = HashMap::new();
    for (pop, idxs) in &through {
        for &a in idxs {
            for &b in idxs {
                if a == b {
                    continue;
                }
                let (sa, db) = (corpus[a].src, corpus[b].dst_key);
                // A useful prediction joins a's source to b's destination,
                // where the direct pair is not already in the corpus view.
                if corpus[a].dst_key == db || corpus[b].src == sa {
                    continue;
                }
                let n = per_pair.entry((sa, db)).or_insert(0);
                if *n >= max_per_pair {
                    continue;
                }
                *n += 1;
                out.push(Splice { a, b, pop: *pop });
            }
        }
    }
    out
}

/// Counts how many splices remain *valid* under the current PoP sequences:
/// both constituent paths must still traverse the splice PoP. `usable`
/// masks out corpus paths pruned as stale (pass all-true for the unpruned
/// variant). Returns `(valid_and_usable, usable)` — the numerator and
/// denominator views Figure 16 needs.
pub fn valid_splices(
    splices: &[Splice],
    current: &[PopSequence],
    usable: &[bool],
) -> (usize, usize) {
    let mut valid = 0;
    let mut retained = 0;
    for s in splices {
        if !usable[s.a] || !usable[s.b] {
            continue;
        }
        retained += 1;
        if current[s.a].contains(&s.pop) && current[s.b].contains(&s.pop) {
            valid += 1;
        }
    }
    (valid, retained)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrr_types::Asn;

    fn seq(src: u32, dst: u32, pops: &[(u32, u16)]) -> PopSequence {
        PopSequence {
            src: ProbeId(src),
            dst_key: dst,
            pops: pops.iter().map(|(a, c)| (Asn(*a), CityId(*c))).collect(),
        }
    }

    #[test]
    fn splices_found_at_shared_pop() {
        let corpus = vec![
            seq(1, 10, &[(100, 0), (200, 1), (300, 2)]),
            seq(2, 20, &[(400, 3), (200, 1), (500, 4)]),
        ];
        let splices = build_splices(&corpus, 8);
        // a=0,b=1 (predict 1→20) and a=1,b=0 (predict 2→10), both at PoP
        // (200, city1).
        assert_eq!(splices.len(), 2);
        for s in &splices {
            assert_eq!(s.pop, (Asn(200), CityId(1)));
        }
    }

    #[test]
    fn no_splice_for_same_destination() {
        let corpus = vec![seq(1, 10, &[(200, 1)]), seq(2, 10, &[(200, 1)])];
        assert!(build_splices(&corpus, 8).is_empty());
    }

    #[test]
    fn validity_tracks_current_paths_and_pruning() {
        let corpus = vec![seq(1, 10, &[(100, 0), (200, 1)]), seq(2, 20, &[(300, 2), (200, 1)])];
        let splices = build_splices(&corpus, 8);
        assert_eq!(splices.len(), 2);
        // Initially valid.
        let (v, r) = valid_splices(&splices, &corpus, &[true, true]);
        assert_eq!((v, r), (2, 2));
        // Path 1 moves off the shared PoP: splices break silently.
        let current = vec![corpus[0].clone(), seq(2, 20, &[(300, 2), (999, 9)])];
        let (v, r) = valid_splices(&splices, &current, &[true, true]);
        assert_eq!((v, r), (0, 2));
        // Pruning the stale path removes the broken splices from service.
        let (v, r) = valid_splices(&splices, &current, &[true, false]);
        assert_eq!((v, r), (0, 0));
    }

    #[test]
    fn per_pair_cap_respected() {
        // Two shared PoPs would give 2 splices per (src,dst) pair; cap 1.
        let corpus = vec![seq(1, 10, &[(200, 1), (201, 2)]), seq(2, 20, &[(200, 1), (201, 2)])];
        let splices = build_splices(&corpus, 1);
        assert_eq!(splices.len(), 2); // one per direction
    }
}
