//! Snapshot publication and the in-process query handle.
//!
//! The ingest thread is the only writer: whenever the detector's epoch
//! advances it extracts a [`DetectorSnapshot`] and swings the cell's
//! pointer. Readers take an `Arc` clone of the current snapshot and answer
//! any number of queries against that immutable state — they never touch
//! the detector, so reads scale with cores and ingestion never waits on
//! query traffic.
//!
//! The cell is an epoch counter plus an `RwLock<Arc<_>>` used as a pointer
//! cell (the arc-swap idiom, built from std primitives): writers hold the
//! write latch only for a pointer store, readers only for an `Arc` clone —
//! both O(1) and far off the query path, which runs entirely on the cloned
//! snapshot.

use crate::query::{answer, QueryResponse, StalenessQuery};
use rrr_core::DetectorSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// The publication point: current epoch and current snapshot pointer.
pub struct SnapshotCell {
    epoch: AtomicU64,
    slot: RwLock<Arc<DetectorSnapshot>>,
}

impl SnapshotCell {
    /// A cell holding an initial snapshot (typically epoch 0, captured
    /// before any input is consumed, so queries never race a missing
    /// snapshot).
    pub fn new(initial: Arc<DetectorSnapshot>) -> Self {
        use rrr_core::Query;
        SnapshotCell { epoch: AtomicU64::new(initial.epoch()), slot: RwLock::new(initial) }
    }

    /// Publishes a newer snapshot. Called by the ingest thread only.
    pub fn publish(&self, snap: Arc<DetectorSnapshot>) {
        use rrr_core::Query;
        let epoch = snap.epoch();
        *self.slot.write().expect("snapshot slot poisoned") = snap;
        self.epoch.store(epoch, Ordering::Release);
    }

    /// The epoch of the currently published snapshot, without taking the
    /// snapshot itself.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current snapshot (an `Arc` clone under a momentary read latch).
    pub fn load(&self) -> Arc<DetectorSnapshot> {
        Arc::clone(&self.slot.read().expect("snapshot slot poisoned"))
    }
}

/// Counters the daemon maintains for observability; all monotone, all
/// readable while the daemon runs.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Queries answered via [`ServeHandle::query`].
    pub queries: AtomicU64,
    /// Merged rounds stepped through the detector.
    pub rounds: AtomicU64,
    /// BGP updates ingested.
    pub updates: AtomicU64,
    /// Public traceroutes ingested.
    pub public: AtomicU64,
    /// Snapshots published (epoch advances observed).
    pub snapshots: AtomicU64,
}

/// The in-process query front end: cheap to clone, safe to share across
/// reader threads, valid for the daemon's whole lifetime (and after it
/// finishes — the last published snapshot stays queryable).
#[derive(Clone)]
pub struct ServeHandle {
    cell: Arc<SnapshotCell>,
    stats: Arc<ServeStats>,
}

impl ServeHandle {
    pub(crate) fn new(cell: Arc<SnapshotCell>, stats: Arc<ServeStats>) -> Self {
        ServeHandle { cell, stats }
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<DetectorSnapshot> {
        self.cell.load()
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Answers one query against the current snapshot. The whole answer
    /// comes from a single snapshot, so the stamped epoch is exact even if
    /// a publish lands mid-call.
    pub fn query(&self, q: &StalenessQuery) -> QueryResponse {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        answer(&*self.snapshot(), q)
    }

    /// The daemon's counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }
}
