//! Snapshot publication and the in-process query handle.
//!
//! The ingest thread is the only writer: whenever the detector's epoch
//! advances it extracts a [`DetectorSnapshot`] and swings the cell's
//! pointer. Readers take an `Arc` clone of the current snapshot and answer
//! any number of queries against that immutable state — they never touch
//! the detector, so reads scale with cores and ingestion never waits on
//! query traffic.
//!
//! The cell is an epoch counter plus an `RwLock<Arc<_>>` used as a pointer
//! cell (the arc-swap idiom, built from std primitives): writers hold the
//! write latch only for a pointer store, readers only for an `Arc` clone —
//! both O(1) and far off the query path, which runs entirely on the cloned
//! snapshot.

use crate::query::{answer, QueryResponse, ResponseBody, StalenessQuery};
use rrr_core::DetectorSnapshot;
use rrr_obs::{labeled, Histogram, Metrics};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// The publication point: current epoch and current snapshot pointer.
pub struct SnapshotCell {
    epoch: AtomicU64,
    slot: RwLock<Arc<DetectorSnapshot>>,
}

impl SnapshotCell {
    /// A cell holding an initial snapshot (typically epoch 0, captured
    /// before any input is consumed, so queries never race a missing
    /// snapshot).
    pub fn new(initial: Arc<DetectorSnapshot>) -> Self {
        use rrr_core::Query;
        SnapshotCell { epoch: AtomicU64::new(initial.epoch()), slot: RwLock::new(initial) }
    }

    /// Publishes a newer snapshot. Called by the ingest thread only.
    pub fn publish(&self, snap: Arc<DetectorSnapshot>) {
        use rrr_core::Query;
        let epoch = snap.epoch();
        *self.slot.write().expect("snapshot slot poisoned") = snap;
        self.epoch.store(epoch, Ordering::Release);
    }

    /// The epoch of the currently published snapshot, without taking the
    /// snapshot itself.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current snapshot (an `Arc` clone under a momentary read latch).
    pub fn load(&self) -> Arc<DetectorSnapshot> {
        Arc::clone(&self.slot.read().expect("snapshot slot poisoned"))
    }
}

/// Counters the daemon maintains for observability; all monotone, all
/// readable while the daemon runs.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Queries answered via [`ServeHandle::query`].
    pub queries: AtomicU64,
    /// Merged rounds stepped through the detector.
    pub rounds: AtomicU64,
    /// BGP updates ingested.
    pub updates: AtomicU64,
    /// Public traceroutes ingested.
    pub public: AtomicU64,
    /// Snapshots published (epoch advances observed).
    pub snapshots: AtomicU64,
}

/// Per-query-type latency histograms, one series per request shape so
/// p50/p99 of cheap point lookups are not averaged with plan searches.
#[derive(Clone, Default)]
struct QueryObs {
    is_stale: Histogram,
    refresh_plan: Histogram,
    prefix_summary: Histogram,
    as_summary: Histogram,
    corpus_summary: Histogram,
    monitor_stats: Histogram,
    metrics: Histogram,
}

impl QueryObs {
    fn new(m: &Metrics) -> Self {
        let h = |t: &str| m.histogram(&labeled("rrr_serve_query_ns", &format!("query=\"{t}\"")));
        QueryObs {
            is_stale: h("is_stale"),
            refresh_plan: h("refresh_plan"),
            prefix_summary: h("prefix_summary"),
            as_summary: h("as_summary"),
            corpus_summary: h("corpus_summary"),
            monitor_stats: h("monitor_stats"),
            metrics: h("metrics"),
        }
    }

    fn for_query(&self, q: &StalenessQuery) -> &Histogram {
        match q {
            StalenessQuery::IsStale(_) => &self.is_stale,
            StalenessQuery::RefreshPlan { .. } => &self.refresh_plan,
            StalenessQuery::PrefixSummary(_) => &self.prefix_summary,
            StalenessQuery::AsSummary(_) => &self.as_summary,
            StalenessQuery::CorpusSummary => &self.corpus_summary,
            StalenessQuery::MonitorStats => &self.monitor_stats,
            StalenessQuery::Metrics => &self.metrics,
        }
    }
}

/// The in-process query front end: cheap to clone, safe to share across
/// reader threads, valid for the daemon's whole lifetime (and after it
/// finishes — the last published snapshot stays queryable).
#[derive(Clone)]
pub struct ServeHandle {
    cell: Arc<SnapshotCell>,
    stats: Arc<ServeStats>,
    metrics: Metrics,
    obs: QueryObs,
}

impl ServeHandle {
    pub(crate) fn new(cell: Arc<SnapshotCell>, stats: Arc<ServeStats>, metrics: Metrics) -> Self {
        let obs = QueryObs::new(&metrics);
        ServeHandle { cell, stats, metrics, obs }
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<DetectorSnapshot> {
        self.cell.load()
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Answers one query against the current snapshot. The whole answer
    /// comes from a single snapshot, so the stamped epoch is exact even if
    /// a publish lands mid-call.
    pub fn query(&self, q: &StalenessQuery) -> QueryResponse {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let _span = self.obs.for_query(q).span();
        // Snapshots carry no registry — the metrics query is answered from
        // the daemon's live registry here, stamped with the current epoch.
        if matches!(q, StalenessQuery::Metrics) {
            return QueryResponse {
                epoch: self.epoch(),
                body: ResponseBody::Metrics(self.metrics.render()),
            };
        }
        answer(&*self.snapshot(), q)
    }

    /// The daemon's counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The registry this handle reports into (disabled unless the daemon
    /// was spawned with [`crate::DaemonConfig::metrics`] enabled).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}
