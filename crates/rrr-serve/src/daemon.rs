//! The ingestion daemon: N feed threads, one merge/step thread, snapshot
//! publication on every epoch advance.
//!
//! Design (after the flashroute.rs reproduction's idiom): no locks on the
//! hot path — each feed pushes batches through its own **bounded** channel
//! (blocking send = backpressure: a fast feed stalls once it runs
//! `channel_capacity` batches ahead), and the single ingest thread owns
//! the detector outright. The only shared mutable state is the snapshot
//! cell's pointer and a few atomic counters.
//!
//! ## Deterministic merge
//!
//! The ingest thread fills every open feed's head, takes the minimum
//! `now`, concatenates all heads at that instant in feed-index order, and
//! sorts the merged batch into canonical `(time, vp)` / `(time, probe)`
//! order before stepping the detector. Feed scheduling therefore cannot
//! influence the stream the detector sees: any split of a given input
//! across any number of feeds steps the detector through exactly
//! [`canonicalize`] of the original rounds,
//! which is what the serial-replay oracle checks.

use crate::feed::{canonical_sort, canonicalize, FeedBatch, FeedSource};
use crate::snapshot::{ServeHandle, ServeStats, SnapshotCell};
use rrr_core::{
    DetectorSnapshot, DurableDetector, PartitionedDetector, Query, StalenessDetector,
    StalenessSignal,
};
use rrr_obs::{labeled, Counter, Gauge, Histogram, Metrics};
use rrr_types::Error;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The detector the daemon steps: bare, wrapped in crash-safe persistence
/// (WAL + periodic checkpoints), or an N-partition deployment
/// ([`rrr_core::partition`]). Queries never see the difference: every
/// published snapshot is a complete [`DetectorSnapshot`] — for the
/// partitioned engine, updates are routed to their owning partition on
/// ingest and the publish is the deterministic cross-partition merge.
// One Engine exists per daemon and it is moved once, into the ingest
// thread — the variant-size spread has no per-item or per-copy cost
// worth an indirection on every detector access.
#[allow(clippy::large_enum_variant)]
pub enum Engine {
    Plain(StalenessDetector),
    Durable(DurableDetector),
    Partitioned(PartitionedDetector),
}

impl Engine {
    /// The wrapped detector.
    ///
    /// # Panics
    ///
    /// For [`Engine::Partitioned`] — an N-partition engine has no single
    /// detector; query its merged state via [`Engine::snapshot`] or reach
    /// a specific partition through
    /// [`PartitionedDetector::partitions`].
    pub fn detector(&self) -> &StalenessDetector {
        match self {
            Engine::Plain(d) => d,
            Engine::Durable(d) => d.detector(),
            Engine::Partitioned(_) => {
                panic!("a partitioned engine has no single detector; use Engine::snapshot")
            }
        }
    }

    /// Mutable access to the wrapped detector.
    ///
    /// # Panics
    ///
    /// For [`Engine::Partitioned`] (see [`Engine::detector`]).
    pub fn detector_mut(&mut self) -> &mut StalenessDetector {
        match self {
            Engine::Plain(d) => d,
            Engine::Durable(d) => d.detector_mut(),
            Engine::Partitioned(_) => {
                panic!("a partitioned engine has no single detector; use Engine::snapshot")
            }
        }
    }

    /// The engine's epoch (closed BGP windows — partitions advance in
    /// lockstep, so any partition's count is the deployment's).
    pub fn epoch(&self) -> u64 {
        match self {
            Engine::Plain(d) => d.closed_bgp_windows(),
            Engine::Durable(d) => d.detector().closed_bgp_windows(),
            Engine::Partitioned(p) => p.closed_bgp_windows(),
        }
    }

    /// A full queryable snapshot of the current state; for the partitioned
    /// engine this is the merged cross-partition view.
    pub fn snapshot(&self) -> DetectorSnapshot {
        match self {
            Engine::Plain(d) => d.snapshot(),
            Engine::Durable(d) => d.detector().snapshot(),
            Engine::Partitioned(p) => p.snapshot(),
        }
    }

    /// A snapshot that reuses `prev`'s unchanged indexes where the engine
    /// supports it. The partitioned merge always captures in full — its
    /// entries span every partition, so there is no single-detector
    /// generation counter to reuse against.
    fn snapshot_incremental(&self, prev: &DetectorSnapshot) -> DetectorSnapshot {
        match self {
            Engine::Plain(d) => d.snapshot_incremental(prev),
            Engine::Durable(d) => d.detector().snapshot_incremental(prev),
            Engine::Partitioned(p) => p.snapshot(),
        }
    }

    fn step(&mut self, batch: &FeedBatch) -> Result<Vec<StalenessSignal>, Error> {
        match self {
            Engine::Plain(d) => Ok(d.step(batch.now, &batch.updates, &batch.public)),
            Engine::Durable(d) => {
                d.step(batch.now, &batch.updates, &batch.public).map_err(Error::from)
            }
            Engine::Partitioned(p) => Ok(p.step(batch.now, &batch.updates, &batch.public)),
        }
    }

    /// Installs `metrics` on the wrapped engine: detector counters for a
    /// plain engine, detector + store counters for a durable one, and
    /// per-partition labeled series for a partitioned deployment.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        match self {
            Engine::Plain(d) => d.set_metrics(metrics),
            Engine::Durable(d) => d.set_metrics(metrics),
            Engine::Partitioned(p) => p.set_metrics(metrics),
        }
    }
}

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bound of each feed's channel, in batches. This is the backpressure
    /// budget: a feed may run at most this many batches ahead of the
    /// merge loop before its thread blocks.
    pub channel_capacity: usize,
    /// Keep every published snapshot in the final [`IngestReport`]
    /// (harness oracles replay against them). Off for production use —
    /// it pins every epoch's snapshot in memory.
    pub record_snapshots: bool,
    /// Registry the daemon reports into: feed/ingest/query series here,
    /// plus everything the wrapped engine registers. Disabled by default —
    /// a disabled handle is a no-op on every hot path.
    pub metrics: Metrics,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig { channel_capacity: 4, record_snapshots: false, metrics: Metrics::disabled() }
    }
}

/// Per-feed series, labeled `feed="i"`. The depth gauge is incremented by
/// the feed thread after each successful send and decremented by the
/// ingest thread after each successful receive, so its value is the number
/// of batches sitting in that feed's channel (transiently off by one
/// between the two updates — gauges are signed for exactly this reason).
#[derive(Clone, Default)]
struct FeedObs {
    batches: Counter,
    updates: Counter,
    public: Counter,
    depth: Gauge,
    stalls: Counter,
}

impl FeedObs {
    fn new(m: &Metrics, feed: usize) -> Self {
        let l = format!("feed=\"{feed}\"");
        FeedObs {
            batches: m.counter(&labeled("rrr_serve_feed_batches_total", &l)),
            updates: m.counter(&labeled("rrr_serve_feed_updates_total", &l)),
            public: m.counter(&labeled("rrr_serve_feed_public_total", &l)),
            depth: m.gauge(&labeled("rrr_serve_queue_depth", &l)),
            stalls: m.counter(&labeled("rrr_serve_backpressure_stalls_total", &l)),
        }
    }

    /// Sends with the bounded channel's backpressure made visible: a full
    /// channel counts one stall before falling back to the blocking send.
    /// Returns `false` when the receiver is gone.
    fn send(
        &self,
        tx: &SyncSender<Result<FeedBatch, Error>>,
        msg: Result<FeedBatch, Error>,
    ) -> bool {
        let sent = match tx.try_send(msg) {
            Ok(()) => true,
            Err(TrySendError::Full(msg)) => {
                self.stalls.inc();
                tx.send(msg).is_ok()
            }
            Err(TrySendError::Disconnected(_)) => false,
        };
        if sent {
            self.depth.add(1);
        }
        sent
    }
}

/// Ingest-thread series: merged rounds, publication progress, and stage
/// timings for the step and publish phases.
#[derive(Clone, Default)]
struct IngestObs {
    rounds: Counter,
    updates: Counter,
    public: Counter,
    snapshots: Counter,
    publish_epoch: Gauge,
    step_ns: Histogram,
    publish_ns: Histogram,
}

impl IngestObs {
    fn new(m: &Metrics) -> Self {
        IngestObs {
            rounds: m.counter("rrr_serve_rounds_total"),
            updates: m.counter("rrr_serve_updates_total"),
            public: m.counter("rrr_serve_public_total"),
            snapshots: m.counter("rrr_serve_snapshots_published_total"),
            publish_epoch: m.gauge("rrr_serve_publish_epoch"),
            step_ns: m.histogram("rrr_serve_step_ns"),
            publish_ns: m.histogram("rrr_serve_publish_ns"),
        }
    }
}

/// What the ingest thread hands back once every feed is drained.
pub struct IngestReport {
    /// The engine, final state intact (checkpointable, queryable).
    pub engine: Engine,
    /// Merged rounds stepped.
    pub rounds: u64,
    /// BGP updates ingested across all feeds.
    pub updates: u64,
    /// Public traceroutes ingested across all feeds.
    pub public: u64,
    /// Every snapshot published (only when
    /// [`DaemonConfig::record_snapshots`] was set; the initial snapshot is
    /// not included — entries correspond to epoch advances).
    pub snapshots: Vec<Arc<DetectorSnapshot>>,
    /// Signals emitted, in stream order.
    pub signals: Vec<StalenessSignal>,
}

/// A running daemon: feed threads plus the merge/step thread, with a
/// cloneable in-process query handle.
pub struct Daemon {
    handle: ServeHandle,
    ingest: JoinHandle<Result<IngestReport, Error>>,
    feeds: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Starts one thread per feed and the merge/step thread. An initial
    /// snapshot is published immediately, so queries are answerable from
    /// the first instant (at the engine's starting epoch).
    pub fn spawn(mut engine: Engine, feeds: Vec<Box<dyn FeedSource>>, cfg: DaemonConfig) -> Daemon {
        engine.set_metrics(&cfg.metrics);
        let cell = Arc::new(SnapshotCell::new(Arc::new(engine.snapshot())));
        let stats = Arc::new(ServeStats::default());
        let handle = ServeHandle::new(Arc::clone(&cell), Arc::clone(&stats), cfg.metrics.clone());

        let feed_obs: Arc<Vec<FeedObs>> =
            Arc::new((0..feeds.len()).map(|i| FeedObs::new(&cfg.metrics, i)).collect());
        let mut feed_threads = Vec::with_capacity(feeds.len());
        let mut rxs: Vec<Receiver<Result<FeedBatch, Error>>> = Vec::with_capacity(feeds.len());
        for (i, mut src) in feeds.into_iter().enumerate() {
            let (tx, rx) = sync_channel::<Result<FeedBatch, Error>>(cfg.channel_capacity.max(1));
            rxs.push(rx);
            let obs = feed_obs[i].clone();
            feed_threads.push(
                std::thread::Builder::new()
                    .name(format!("rrr-feed-{i}"))
                    .spawn(move || loop {
                        match src.next_batch() {
                            // A closed receiver means the merge loop bailed
                            // (error path); just stop producing.
                            Ok(Some(b)) => {
                                obs.batches.inc();
                                obs.updates.add(b.updates.len() as u64);
                                obs.public.add(b.public.len() as u64);
                                if !obs.send(&tx, Ok(b)) {
                                    break;
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                let _ = obs.send(&tx, Err(e));
                                break;
                            }
                        }
                    })
                    .expect("spawn feed thread"),
            );
        }

        let ingest_obs = IngestObs::new(&cfg.metrics);
        let ingest = std::thread::Builder::new()
            .name("rrr-ingest".into())
            .spawn(move || {
                ingest_loop(engine, rxs, cell, stats, cfg.record_snapshots, feed_obs, ingest_obs)
            })
            .expect("spawn ingest thread");

        Daemon { handle, ingest, feeds: feed_threads }
    }

    /// The in-process query handle (cloneable; outlives the daemon).
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Waits for every feed to drain and the final state to settle.
    pub fn join(self) -> Result<IngestReport, Error> {
        for t in self.feeds {
            let _ = t.join();
        }
        match self.ingest.join() {
            Ok(r) => r,
            Err(_) => Err(Error::feed("ingest thread panicked")),
        }
    }
}

fn ingest_loop(
    mut engine: Engine,
    rxs: Vec<Receiver<Result<FeedBatch, Error>>>,
    cell: Arc<SnapshotCell>,
    stats: Arc<ServeStats>,
    record_snapshots: bool,
    feed_obs: Arc<Vec<FeedObs>>,
    obs: IngestObs,
) -> Result<IngestReport, Error> {
    let n = rxs.len();
    let mut heads: Vec<Option<FeedBatch>> = (0..n).map(|_| None).collect();
    let mut open: Vec<bool> = vec![true; n];
    let mut published = engine.epoch();
    // The last published snapshot, kept so the next publish can reuse its
    // unchanged indexes instead of rebuilding them (the cell's initial
    // snapshot seeds the chain).
    let mut prev = cell.load();
    let mut rounds = 0u64;
    let mut updates = 0u64;
    let mut public = 0u64;
    let mut snapshots = Vec::new();
    let mut signals = Vec::new();
    loop {
        // Fill every open feed's head (blocking: feed clocks only advance
        // together, which keeps the merge deterministic under any thread
        // scheduling).
        for i in 0..rxs.len() {
            if open[i] && heads[i].is_none() {
                match rxs[i].recv() {
                    Ok(Ok(b)) => {
                        feed_obs[i].depth.sub(1);
                        heads[i] = Some(b);
                    }
                    Ok(Err(e)) => {
                        feed_obs[i].depth.sub(1);
                        return Err(e);
                    }
                    Err(_) => open[i] = false,
                }
            }
        }
        // Merge every head at the minimum instant, in feed-index order.
        let Some(now) = heads.iter().flatten().map(|b| b.now).min() else { break };
        let mut merged = FeedBatch::tick(now);
        for h in heads.iter_mut() {
            if h.as_ref().is_some_and(|b| b.now == now) {
                let b = h.take().expect("checked some");
                merged.updates.extend(b.updates);
                merged.public.extend(b.public);
            }
        }
        canonical_sort(&mut merged);

        updates += merged.updates.len() as u64;
        public += merged.public.len() as u64;
        rounds += 1;
        stats.updates.fetch_add(merged.updates.len() as u64, Ordering::Relaxed);
        stats.public.fetch_add(merged.public.len() as u64, Ordering::Relaxed);
        stats.rounds.fetch_add(1, Ordering::Relaxed);
        obs.rounds.inc();
        obs.updates.add(merged.updates.len() as u64);
        obs.public.add(merged.public.len() as u64);

        let step_span = obs.step_ns.span();
        signals.extend(engine.step(&merged)?);
        drop(step_span);

        let epoch = engine.epoch();
        if epoch > published {
            // Incremental capture: only entries touched since `prev` are
            // re-copied; unchanged prefix/ASN summaries are shared. The
            // serial-replay oracle compares these publishes against full
            // captures, so the reuse is continuously checked.
            let publish_span = obs.publish_ns.span();
            let snap = Arc::new(engine.snapshot_incremental(&prev));
            prev = Arc::clone(&snap);
            cell.publish(Arc::clone(&snap));
            drop(publish_span);
            stats.snapshots.fetch_add(1, Ordering::Relaxed);
            obs.snapshots.inc();
            obs.publish_epoch.set(epoch as i64);
            published = epoch;
            if record_snapshots {
                snapshots.push(snap);
            }
        }
    }
    Ok(IngestReport { engine, rounds, updates, public, snapshots, signals })
}

/// The ground-truth serial replay: steps a fresh batch detector through
/// [`canonicalize`] of the original rounds, capturing a snapshot at every
/// epoch advance — the exact rule the daemon publishes under. The oracle
/// compares daemon-published snapshots against these, index by index.
pub fn replay_reference(
    mut det: StalenessDetector,
    steps: &[FeedBatch],
) -> (StalenessDetector, Vec<Arc<DetectorSnapshot>>) {
    let mut snapshots = Vec::new();
    let mut published = det.closed_bgp_windows();
    for b in canonicalize(steps) {
        let _ = det.step(b.now, &b.updates, &b.public);
        let epoch = det.epoch();
        if epoch > published {
            snapshots.push(Arc::new(det.snapshot()));
            published = epoch;
        }
    }
    (det, snapshots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feed::{split_rounds, ScriptedFeed};
    use rrr_core::DetectorBuilder;
    use rrr_types::{AsPath, Asn, BgpElem, BgpUpdate, Prefix, Timestamp, VpId};

    fn tiny_detector() -> StalenessDetector {
        let topo = Arc::new(rrr_topology::generate(&rrr_topology::TopologyConfig::small(3)));
        let mut map = rrr_ip2as::IpToAsMap::new();
        for i in 0..4u32 {
            map.add_origin(
                format!("10.{i}.0.0/16").parse::<Prefix>().expect("prefix"),
                Asn(100 + i),
            );
        }
        let alias = rrr_ip2as::AliasResolver::from_topology(&topo, 1.0, 0);
        let geo = rrr_geo::Geolocator::new(rrr_geo::GeoDb::default(), vec![]);
        DetectorBuilder::new().seed(11).build(topo, map, geo, alias, (0..4).map(VpId).collect())
    }

    fn upd(vp: u32, t: u64, third: u8) -> BgpUpdate {
        BgpUpdate {
            time: Timestamp(t),
            vp: VpId(vp),
            prefix: format!("10.{third}.0.0/16").parse().expect("prefix"),
            elem: BgpElem::Announce {
                path: AsPath::from_asns([100 + vp, 200 + third as u32]),
                communities: vec![rrr_types::Community::new(100 + vp, third as u32)],
            },
        }
    }

    /// Five rounds of updates spread over four VPs and three prefixes.
    fn scripted_rounds() -> Vec<FeedBatch> {
        (1..=5u64)
            .map(|r| {
                let base = r * 900;
                FeedBatch {
                    now: Timestamp(base),
                    updates: (0..4u32)
                        .flat_map(|vp| {
                            (0..3u8).map(move |third| {
                                upd(vp, base - 900 + 10 * vp as u64 + third as u64, third)
                            })
                        })
                        .collect(),
                    public: Vec::new(),
                }
            })
            .collect()
    }

    fn assert_same_answers(a: &DetectorSnapshot, b: &DetectorSnapshot) {
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.corpus_summary(), b.corpus_summary());
        assert_eq!(a.monitor_stats(), b.monitor_stats());
        assert_eq!(a.plan(4), b.plan(4));
        // Repeatability: planning from a snapshot never perturbs it.
        assert_eq!(a.plan(4), a.plan(4));
    }

    #[test]
    fn daemon_matches_serial_replay_at_every_epoch() {
        let steps = scripted_rounds();
        let (_, reference) = replay_reference(tiny_detector(), &steps);
        assert!(!reference.is_empty(), "rounds must close windows");
        for n in [1usize, 2, 8] {
            let feeds: Vec<Box<dyn FeedSource>> = split_rounds(&steps, n)
                .into_iter()
                .map(|b| Box::new(ScriptedFeed::new(b)) as Box<dyn FeedSource>)
                .collect();
            let daemon = Daemon::spawn(
                Engine::Plain(tiny_detector()),
                feeds,
                DaemonConfig {
                    channel_capacity: 1,
                    record_snapshots: true,
                    ..DaemonConfig::default()
                },
            );
            let handle = daemon.handle();
            let report = daemon.join().expect("drained");
            assert_eq!(report.rounds, steps.len() as u64, "n={n}");
            assert_eq!(report.snapshots.len(), reference.len(), "n={n}");
            for (got, want) in report.snapshots.iter().zip(&reference) {
                assert_same_answers(got, want);
            }
            // No corpus churn in this workload, so every incremental
            // publish must have shared the membership indexes of its
            // predecessor rather than rebuilding them.
            for pair in report.snapshots.windows(2) {
                assert!(pair[1].shares_indexes_with(&pair[0]), "indexes rebuilt, n={n}");
            }
            // The handle keeps serving the last published snapshot.
            assert_eq!(handle.epoch(), reference.last().expect("nonempty").epoch());
            assert_eq!(handle.stats().rounds.load(Ordering::Relaxed), report.rounds);
        }
    }

    #[test]
    fn daemon_signals_match_serial_replay() {
        let steps = scripted_rounds();
        let mut reference = tiny_detector();
        let mut want = Vec::new();
        for b in canonicalize(&steps) {
            want.extend(reference.step(b.now, &b.updates, &b.public));
        }
        let feeds: Vec<Box<dyn FeedSource>> = split_rounds(&steps, 3)
            .into_iter()
            .map(|b| Box::new(ScriptedFeed::new(b)) as Box<dyn FeedSource>)
            .collect();
        let daemon = Daemon::spawn(Engine::Plain(tiny_detector()), feeds, DaemonConfig::default());
        let report = daemon.join().expect("drained");
        assert_eq!(report.signals, want);
    }

    /// A corpus entry per destination prefix so the partitioned daemon
    /// actually has per-partition state to merge.
    fn corpus_tr(i: u32) -> rrr_types::Traceroute {
        use rrr_types::{Hop, Ipv4, ProbeId, TracerouteId};
        rrr_types::Traceroute {
            id: TracerouteId(1 + i as u64),
            probe: ProbeId(i),
            src: "10.0.0.200".parse::<Ipv4>().expect("ip"),
            dst: Ipv4::new(10, i as u8, 0, 1),
            time: Timestamp(0),
            hops: vec![
                Hop::responsive("10.0.0.2".parse::<Ipv4>().expect("ip")),
                Hop::responsive(Ipv4::new(10, i as u8, 0, 1)),
            ],
            reached: true,
        }
    }

    /// The daemon over an N-partition engine must publish snapshots (the
    /// merged cross-partition view) and emit signals bit-identical to the
    /// serial single-detector replay of the same stream — the serve-side
    /// face of the partition-invariance oracle.
    #[test]
    fn partitioned_daemon_matches_serial_replay() {
        use rrr_core::{PartitionMap, PartitionedDetector};

        let steps = scripted_rounds();
        let mut reference = tiny_detector();
        for i in 1..4u32 {
            let _ = reference.add_corpus(corpus_tr(i), None);
        }
        let mut want_signals = Vec::new();
        {
            let mut serial = tiny_detector();
            for i in 1..4u32 {
                let _ = serial.add_corpus(corpus_tr(i), None);
            }
            for b in canonicalize(&steps) {
                want_signals.extend(serial.step(b.now, &b.updates, &b.public));
            }
        }
        let (_, want_snaps) = replay_reference(reference, &steps);
        assert!(!want_snaps.is_empty(), "rounds must close windows");

        for n in [2usize, 3] {
            // Split the 10.1/10.2/10.3 corpus key range into n partitions.
            let splits: Vec<u32> = (1..n as u32)
                .map(|k| rrr_types::Ipv4::new(10, 1 + k as u8, 0, 0).value())
                .collect();
            let map = PartitionMap::from_splits(splits).expect("valid splits");
            let mut pd = PartitionedDetector::from_factory(map, |_| tiny_detector());
            for i in 1..4u32 {
                let _ = pd.add_corpus(corpus_tr(i), None);
            }
            let feeds: Vec<Box<dyn FeedSource>> = split_rounds(&steps, 2)
                .into_iter()
                .map(|b| Box::new(ScriptedFeed::new(b)) as Box<dyn FeedSource>)
                .collect();
            let daemon = Daemon::spawn(
                Engine::Partitioned(pd),
                feeds,
                DaemonConfig {
                    channel_capacity: 1,
                    record_snapshots: true,
                    ..DaemonConfig::default()
                },
            );
            let report = daemon.join().expect("drained");
            assert_eq!(report.signals, want_signals, "n={n}");
            assert_eq!(report.snapshots.len(), want_snaps.len(), "n={n}");
            for (got, want) in report.snapshots.iter().zip(&want_snaps) {
                assert_same_answers(got, want);
            }
        }
    }

    #[test]
    fn feed_error_surfaces_from_join() {
        struct FailingFeed(u32);
        impl FeedSource for FailingFeed {
            fn next_batch(&mut self) -> Result<Option<FeedBatch>, Error> {
                if self.0 == 0 {
                    return Err(Error::feed("collector unreachable"));
                }
                self.0 -= 1;
                Ok(Some(FeedBatch::tick(Timestamp(900 * (3 - self.0 as u64)))))
            }
        }
        let daemon = Daemon::spawn(
            Engine::Plain(tiny_detector()),
            vec![Box::new(FailingFeed(2))],
            DaemonConfig::default(),
        );
        let err = match daemon.join() {
            Err(e) => e,
            Ok(_) => panic!("feed failure must propagate"),
        };
        assert!(matches!(err, Error::Feed { .. }), "{err}");
    }
}
