//! `rrr-serve`: the long-running ingestion daemon and its query front ends.
//!
//! The batch pipeline in `rrr-core` answers questions about whatever it
//! has been stepped through; this crate turns it into a **service**:
//!
//! - N concurrent feeds ([`FeedSource`]) — scripted rounds in harnesses,
//!   [`MrtFeed`]s over decoded MRT streams in deployments — each pulled by
//!   its own thread through a bounded channel (blocking send =
//!   backpressure);
//! - one ingest thread that merges feed batches deterministically (see
//!   [`feed`]) and steps the detector;
//! - epoch-versioned immutable [`rrr_core::DetectorSnapshot`]s published
//!   at every BGP-window close, so read traffic runs against a stable
//!   state and never contends with ingestion;
//! - a typed in-process API ([`ServeHandle::query`] over
//!   [`StalenessQuery`]) and a line-delimited-JSON TCP front end
//!   ([`TcpServer`]), every answer stamped with the snapshot epoch it was
//!   computed from.
//!
//! The load-bearing property, checked end to end by the `rrr-sim`
//! serve-equivalence oracle: at every published epoch, the daemon's
//! answers are **bit-identical** to a serial batch detector replayed over
//! the same input to the same epoch ([`replay_reference`]), for any feed
//! count and any thread interleaving.

pub mod daemon;
pub mod feed;
pub mod query;
pub mod snapshot;
pub mod tcp;
pub mod wire;

pub use daemon::{replay_reference, Daemon, DaemonConfig, Engine, IngestReport};
pub use feed::{
    canonical_sort, canonicalize, split_rounds, FeedBatch, FeedSource, MrtFeed, ScriptedFeed,
};
pub use query::{answer, QueryResponse, ResponseBody, StalenessQuery};
pub use snapshot::{ServeHandle, ServeStats, SnapshotCell};
pub use tcp::TcpServer;
