//! The typed query surface: questions, epoch-stamped answers, and the
//! evaluator that runs them against anything implementing
//! [`rrr_core::Query`].

use rrr_core::{
    AsSummary, CorpusSummary, Freshness, MonitorStats, PrefixSummary, Query, RefreshPlan,
};
use rrr_types::{Asn, Prefix, TracerouteId};

/// A question about the monitored corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StalenessQuery {
    /// Freshness of one corpus traceroute.
    IsStale(TracerouteId),
    /// Which traceroutes to refresh under a probing budget.
    RefreshPlan { budget: usize },
    /// Entries destined under one announced prefix.
    PrefixSummary(Prefix),
    /// Entries whose AS path traverses one AS.
    AsSummary(Asn),
    /// Whole-corpus tallies.
    CorpusSummary,
    /// Traceroute-derived monitor inventory.
    MonitorStats,
    /// Live metrics in Prometheus-style text exposition. Answered from
    /// the daemon's registry by [`crate::ServeHandle::query`], not from a
    /// snapshot: metric state is transient and never checkpointed.
    Metrics,
}

/// The answer payload for each [`StalenessQuery`] variant.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// `None` when the traceroute is not in the corpus.
    Freshness(Option<Freshness>),
    Plan(RefreshPlan),
    Prefix(PrefixSummary),
    As(AsSummary),
    Corpus(CorpusSummary),
    Monitors(MonitorStats),
    /// Prometheus-style text exposition of the live registry.
    Metrics(String),
}

/// An answer, stamped with the epoch of the snapshot that produced it —
/// the number of closed BGP windows behind the answer, so callers know
/// exactly which prefix of the input stream it reflects.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    pub epoch: u64,
    pub body: ResponseBody,
}

/// Evaluates a query against any [`Query`] implementor (a live detector
/// or an immutable snapshot), stamping the source's epoch on the answer.
pub fn answer<Q: Query + ?Sized>(src: &Q, q: &StalenessQuery) -> QueryResponse {
    let body = match q {
        StalenessQuery::IsStale(id) => ResponseBody::Freshness(src.freshness_of(*id)),
        StalenessQuery::RefreshPlan { budget } => ResponseBody::Plan(src.plan(*budget)),
        StalenessQuery::PrefixSummary(p) => ResponseBody::Prefix(src.prefix_summary(*p)),
        StalenessQuery::AsSummary(a) => ResponseBody::As(src.as_summary(*a)),
        StalenessQuery::CorpusSummary => ResponseBody::Corpus(src.corpus_summary()),
        StalenessQuery::MonitorStats => ResponseBody::Monitors(src.monitor_stats()),
        // Snapshots carry no registry; `ServeHandle::query` intercepts
        // this variant and substitutes the daemon's live exposition.
        StalenessQuery::Metrics => ResponseBody::Metrics(String::new()),
    };
    QueryResponse { epoch: src.epoch(), body }
}
