//! Feed sources: where the daemon's input batches come from, and the
//! canonical merge rule that makes N concurrent feeds equivalent to one
//! serial stream.
//!
//! Real deployments ingest one MRT feed per collector, each with its own
//! clock. The daemon merges same-instant batches across feeds and then
//! sorts the merged batch into **canonical order** — updates by
//! `(time, vp)`, public traceroutes by `(time, probe)`. Because every
//! vantage point's items live wholly inside one feed (FIFO preserved),
//! canonical order is independent of how many feeds carried the stream,
//! which is what lets a serial batch replay act as the ground-truth oracle
//! for any feed count.

use rrr_types::{BgpUpdate, Timestamp, Traceroute, WindowConfig};
use std::collections::VecDeque;
use std::io::Read;

/// One batch of input on one feed's clock: everything that feed observed
/// up to (and including) `now`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeedBatch {
    /// The feed clock after this batch; feeds must emit non-decreasing
    /// `now` values.
    pub now: Timestamp,
    /// BGP updates observed since the previous batch, time-sorted.
    pub updates: Vec<BgpUpdate>,
    /// Public traceroutes observed since the previous batch, time-sorted.
    pub public: Vec<Traceroute>,
}

impl FeedBatch {
    /// A clock-only batch: the feed advanced to `now` with nothing to
    /// report. Empty batches still drive window closes, so feeds emit them
    /// rather than skipping quiet rounds.
    pub fn tick(now: Timestamp) -> Self {
        FeedBatch { now, ..FeedBatch::default() }
    }
}

/// A source of [`FeedBatch`]es, pulled by a dedicated feed thread.
pub trait FeedSource: Send {
    /// The next batch on this feed's clock; `Ok(None)` at end of stream.
    fn next_batch(&mut self) -> Result<Option<FeedBatch>, rrr_types::Error>;
}

/// A feed scripted from an in-memory batch list (simulation scenarios,
/// tests).
#[derive(Debug, Default)]
pub struct ScriptedFeed {
    batches: VecDeque<FeedBatch>,
}

impl ScriptedFeed {
    pub fn new(batches: impl IntoIterator<Item = FeedBatch>) -> Self {
        ScriptedFeed { batches: batches.into_iter().collect() }
    }
}

impl FeedSource for ScriptedFeed {
    fn next_batch(&mut self) -> Result<Option<FeedBatch>, rrr_types::Error> {
        Ok(self.batches.pop_front())
    }
}

/// An MRT feed: wraps an [`rrr_mrt::UpdateStream`] and batches its decoded
/// updates by BGP window, emitting one [`FeedBatch`] per window with
/// `now` at the window's end — the shape of a RouteViews dump cycle.
pub struct MrtFeed<R: Read> {
    stream: rrr_mrt::UpdateStream<R>,
    window: WindowConfig,
    /// One decoded update of lookahead (the first update of the *next*
    /// window, held until that window's batch is assembled).
    lookahead: Option<BgpUpdate>,
    started: bool,
}

impl<R: Read + Send> MrtFeed<R> {
    pub fn new(stream: rrr_mrt::UpdateStream<R>, window: WindowConfig) -> Self {
        MrtFeed { stream, window, lookahead: None, started: false }
    }
}

impl<R: Read + Send> FeedSource for MrtFeed<R> {
    fn next_batch(&mut self) -> Result<Option<FeedBatch>, rrr_types::Error> {
        let first = match self.lookahead.take().or_else(|| self.stream.next()) {
            Some(u) => u,
            None => {
                if let Some(e) = self.stream.finished_with.take() {
                    return Err(rrr_types::Error::feed(format!("mrt stream: {e}")));
                }
                return Ok(None);
            }
        };
        if !self.started {
            self.started = true;
        }
        let w = self.window.window_of(first.time);
        let (_, end) = self.window.bounds(w);
        let mut updates = vec![first];
        loop {
            match self.stream.next() {
                Some(u) if self.window.window_of(u.time) == w => updates.push(u),
                Some(u) => {
                    self.lookahead = Some(u);
                    break;
                }
                None => {
                    if let Some(e) = self.stream.finished_with.take() {
                        return Err(rrr_types::Error::feed(format!("mrt stream: {e}")));
                    }
                    break;
                }
            }
        }
        Ok(Some(FeedBatch { now: end, updates, public: Vec::new() }))
    }
}

/// Sorts one merged batch into canonical order: updates by `(time, vp)`,
/// public traceroutes by `(time, probe)`. Stable, so same-key items keep
/// their concatenation (feed-index) order — which per-VP is the feed's
/// own FIFO order.
pub fn canonical_sort(batch: &mut FeedBatch) {
    batch.updates.sort_by_key(|u| (u.time, u.vp));
    batch.public.sort_by_key(|t| (t.time, t.probe));
}

/// The serial reference stream for a scripted run: every batch in
/// canonical order. Feeding these to a batch detector step by step is, by
/// construction, what the daemon's merge of any [`split_rounds`] of the
/// same steps converges to.
pub fn canonicalize(steps: &[FeedBatch]) -> Vec<FeedBatch> {
    let mut out = steps.to_vec();
    for b in &mut out {
        canonical_sort(b);
    }
    out
}

/// Splits a serial batch script across `n` feeds: updates go to feed
/// `vp % n`, public traceroutes to feed `probe % n`. Every feed gets a
/// batch for every step — empty ones included — so all feed clocks tick
/// through every round and no window close is starved behind a quiet feed.
pub fn split_rounds(steps: &[FeedBatch], n: usize) -> Vec<Vec<FeedBatch>> {
    assert!(n > 0, "at least one feed");
    let mut feeds: Vec<Vec<FeedBatch>> = vec![Vec::with_capacity(steps.len()); n];
    for step in steps {
        for (i, feed) in feeds.iter_mut().enumerate() {
            let updates: Vec<BgpUpdate> =
                step.updates.iter().filter(|u| (u.vp.0 as usize) % n == i).cloned().collect();
            let public: Vec<Traceroute> =
                step.public.iter().filter(|t| (t.probe.0 as usize) % n == i).cloned().collect();
            feed.push(FeedBatch { now: step.now, updates, public });
        }
    }
    feeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrr_types::{AsPath, Asn, BgpElem, Hop, Ipv4, ProbeId, TracerouteId, VpId};

    fn upd(vp: u32, t: u64) -> BgpUpdate {
        BgpUpdate {
            time: Timestamp(t),
            vp: VpId(vp),
            prefix: "10.0.0.0/16".parse().expect("prefix"),
            elem: BgpElem::Announce { path: AsPath::from_asns([100, 200]), communities: vec![] },
        }
    }

    fn tr(probe: u32, id: u64, t: u64) -> Traceroute {
        Traceroute {
            id: TracerouteId(id),
            probe: ProbeId(probe),
            src: Ipv4::new(10, 0, 0, 1),
            dst: Ipv4::new(10, 1, 0, 1),
            time: Timestamp(t),
            hops: vec![Hop::responsive(Ipv4::new(10, 1, 0, 1))],
            reached: true,
        }
    }

    fn merge_like_daemon(feeds: &mut [Vec<FeedBatch>]) -> Vec<FeedBatch> {
        // Reproduce the daemon's merge rule in miniature: take all heads
        // sharing the minimum `now` in feed order, concatenate, sort.
        let mut idx = vec![0usize; feeds.len()];
        let mut out = Vec::new();
        loop {
            let min = feeds.iter().zip(&idx).filter_map(|(f, &i)| f.get(i).map(|b| b.now)).min();
            let Some(now) = min else { break };
            let mut merged = FeedBatch::tick(now);
            for (f, i) in feeds.iter().zip(idx.iter_mut()) {
                if f.get(*i).is_some_and(|b| b.now == now) {
                    merged.updates.extend(f[*i].updates.iter().cloned());
                    merged.public.extend(f[*i].public.iter().cloned());
                    *i += 1;
                }
            }
            canonical_sort(&mut merged);
            out.push(merged);
        }
        out
    }

    #[test]
    fn split_then_merge_is_canonical_at_any_feed_count() {
        let steps = vec![
            FeedBatch {
                now: Timestamp(900),
                updates: vec![upd(2, 10), upd(0, 10), upd(1, 20), upd(5, 15)],
                public: vec![tr(1, 1, 12), tr(0, 2, 12), tr(2, 3, 5)],
            },
            FeedBatch { now: Timestamp(1800), updates: vec![upd(3, 1000)], public: vec![] },
        ];
        let reference = canonicalize(&steps);
        for n in [1usize, 2, 3, 8] {
            let mut feeds = split_rounds(&steps, n);
            assert_eq!(feeds.len(), n);
            // Empty batches are kept: every feed sees every round.
            for f in &feeds {
                assert_eq!(f.len(), steps.len());
            }
            assert_eq!(merge_like_daemon(&mut feeds), reference, "n={n}");
        }
    }

    #[test]
    fn scripted_feed_drains_in_order() {
        let mut f =
            ScriptedFeed::new(vec![FeedBatch::tick(Timestamp(1)), FeedBatch::tick(Timestamp(2))]);
        assert_eq!(f.next_batch().expect("ok").expect("batch").now, Timestamp(1));
        assert_eq!(f.next_batch().expect("ok").expect("batch").now, Timestamp(2));
        assert!(f.next_batch().expect("ok").is_none());
    }

    #[test]
    fn mrt_feed_batches_by_window() {
        use rrr_mrt::{MrtFileWriter, StreamFilter, UpdateStream, VpDirectory};
        let mut dir = VpDirectory::default();
        for i in 0..3 {
            dir.register(VpId(i), Asn(100 + i));
        }
        // Times 100, 850 in window 0; 950, 1700 in window 1 (900s windows).
        let updates = vec![upd(0, 100), upd(1, 850), upd(2, 950), upd(0, 1700)];
        let mut w = MrtFileWriter::new(Vec::new());
        for u in &updates {
            w.write_update(&dir, u).expect("in-memory write");
        }
        let bytes = w.finish().expect("flush");
        let stream = UpdateStream::new(&bytes[..], dir, StreamFilter::default());
        let mut feed = MrtFeed::new(stream, WindowConfig::BGP);

        let b0 = feed.next_batch().expect("ok").expect("batch");
        assert_eq!(b0.now, Timestamp(900));
        assert_eq!(b0.updates, updates[..2].to_vec());
        let b1 = feed.next_batch().expect("ok").expect("batch");
        assert_eq!(b1.now, Timestamp(1800));
        assert_eq!(b1.updates, updates[2..].to_vec());
        assert!(feed.next_batch().expect("ok").is_none());
    }
}
