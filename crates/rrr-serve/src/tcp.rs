//! The TCP front end: line-delimited JSON over a plain `TcpListener`.
//!
//! One accept thread polls a non-blocking listener (so shutdown never
//! hangs in `accept`); each connection gets its own handler thread reading
//! newline-terminated requests and writing one response line per request.
//! Everything is answered from the [`ServeHandle`]'s current snapshot, so
//! connection handlers never touch the detector and a slow client cannot
//! stall ingestion.
//!
//! A malformed line produces an `{"error": ...}` line and the connection
//! stays open; EOF from the client closes it. [`TcpServer::shutdown`]
//! stops accepting, wakes the handlers, and joins every thread.

use crate::snapshot::ServeHandle;
use crate::wire::{decode_request, encode_error, encode_response};
use rrr_types::Error;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

const POLL: Duration = Duration::from_millis(10);

/// A running TCP query server.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port; the bound address
    /// is available via [`TcpServer::addr`]) and starts serving queries
    /// from `handle`'s snapshots.
    pub fn bind(addr: &str, handle: ServeHandle) -> Result<TcpServer, Error> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();

        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("rrr-accept".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((socket, _)) => {
                                let handle = handle.clone();
                                let stop = Arc::clone(&stop);
                                let t = std::thread::Builder::new()
                                    .name("rrr-conn".into())
                                    .spawn(move || serve_conn(socket, handle, stop))
                                    .expect("spawn connection thread");
                                conns.lock().expect("conns lock").push(t);
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL);
                            }
                            // Listener died (e.g. interface gone): stop
                            // accepting; existing connections keep serving.
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(TcpServer { addr: local, stop, accept: Some(accept), conns })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains every connection handler, and joins all
    /// server threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().expect("conns lock"));
        for t in conns {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_conn(socket: TcpStream, handle: ServeHandle, stop: Arc<AtomicBool>) {
    // Read with a timeout so the handler notices `stop` even while a
    // client holds the connection open silently.
    let _ = socket.set_read_timeout(Some(POLL));
    let mut writer = match socket.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(socket);
    let mut line = String::new();
    while !stop.load(Ordering::Acquire) {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                if line.trim().is_empty() {
                    continue;
                }
                let out = match decode_request(line.trim()) {
                    Ok(q) => encode_response(&handle.query(&q)),
                    Err(e) => encode_error(&e),
                };
                if writer.write_all(out.as_bytes()).and_then(|()| writer.write_all(b"\n")).is_err()
                {
                    return;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{Daemon, DaemonConfig, Engine};
    use crate::feed::ScriptedFeed;
    use rrr_core::DetectorBuilder;

    #[test]
    fn serves_queries_over_tcp_and_shuts_down_cleanly() {
        // Tiny-world detector: structure of the protocol is what's under
        // test here; end-to-end content equivalence lives in rrr-sim.
        let topo =
            std::sync::Arc::new(rrr_topology::generate(&rrr_topology::TopologyConfig::small(3)));
        let alias = rrr_ip2as::AliasResolver::from_topology(&topo, 1.0, 0);
        let det = DetectorBuilder::new().seed(7).build(
            topo,
            rrr_ip2as::IpToAsMap::new(),
            rrr_geo::Geolocator::new(rrr_geo::GeoDb::default(), vec![]),
            alias,
            vec![],
        );
        let daemon = Daemon::spawn(
            Engine::Plain(det),
            vec![Box::new(ScriptedFeed::default())],
            DaemonConfig::default(),
        );
        let mut server = TcpServer::bind("127.0.0.1:0", daemon.handle()).expect("bind");

        let mut client = TcpStream::connect(server.addr()).expect("connect");
        client
            .write_all(b"{\"query\":\"corpus_summary\"}\nnot json\n{\"query\":\"monitor_stats\"}\n")
            .expect("send");
        let mut lines = BufReader::new(client.try_clone().expect("clone")).lines();
        let ok = lines.next().expect("line").expect("read");
        assert!(ok.contains("\"epoch\""), "{ok}");
        assert!(ok.contains("corpus_summary"), "{ok}");
        let err = lines.next().expect("line").expect("read");
        assert!(err.contains("\"error\""), "{err}");
        let ok2 = lines.next().expect("line").expect("read");
        assert!(ok2.contains("monitor_stats"), "{ok2}");
        drop(lines);

        server.shutdown();
        server.shutdown(); // idempotent
        let report = daemon.join().expect("drained");
        assert_eq!(report.rounds, 0);
    }
}
