//! The line-delimited-JSON wire protocol: one request object per line in,
//! one response object per line out.
//!
//! The vendored `serde_json` shim only *emits* JSON, so the request side
//! is a small recursive-descent parser producing [`serde_json::Value`]
//! trees; the response side builds `Value` trees by hand and serializes
//! them with the shim. Both directions are exercised by round-trip tests.
//!
//! Clients get the mirror pair: [`encode_request`] (the inverse of
//! [`decode_request`]) and [`decode_response`] (the inverse of
//! [`encode_response`]), so nothing outside this module hand-assembles
//! or hand-parses wire lines.
//!
//! ## Requests
//!
//! ```json
//! {"query": "is_stale", "id": 12}
//! {"query": "refresh_plan", "budget": 4}
//! {"query": "prefix_summary", "prefix": "10.0.0.0/16"}
//! {"query": "as_summary", "asn": 101}
//! {"query": "corpus_summary"}
//! {"query": "monitor_stats"}
//! ```
//!
//! ## Responses
//!
//! Every success is `{"epoch": E, "body": {"kind": ..., ...}}`; every
//! failure is `{"error": "..."}` (the connection stays open — a bad line
//! only fails that line).

use crate::query::{QueryResponse, ResponseBody, StalenessQuery};
use rrr_core::{
    AsSummary, CorpusSummary, FamilyStats, Freshness, FreshnessSummary, MonitorStats,
    PrefixSummary, RefreshPlan,
};
use rrr_types::{Asn, Error, Timestamp, TracerouteId};
use serde_json::{Map, Value};

// ---------------------------------------------------------------------------
// JSON parsing (requests)
// ---------------------------------------------------------------------------

/// Parses one JSON document (object, array, or scalar). Trailing
/// whitespace is allowed; trailing garbage is an error.
pub fn parse_json(input: &str) -> Result<Value, Error> {
    let mut p = Parser { b: input.as_bytes(), i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(Error::protocol(format!("trailing bytes at offset {}", p.i)));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let c = self.peek().ok_or_else(|| Error::protocol("unexpected end of input"))?;
        self.i += 1;
        Ok(c)
    }

    fn expect(&mut self, want: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != want {
            return Err(Error::protocol(format!(
                "expected '{}', found '{}' at offset {}",
                want as char,
                got as char,
                self.i - 1
            )));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(Error::protocol(format!("invalid literal at offset {}", self.i)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek().ok_or_else(|| Error::protocol("unexpected end of input"))? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(Error::protocol(format!("unexpected '{}' at offset {}", c as char, self.i))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                c => {
                    return Err(Error::protocol(format!(
                        "expected ',' or ']', found '{}'",
                        c as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(map)),
                c => {
                    return Err(Error::protocol(format!(
                        "expected ',' or '}}', found '{}'",
                        c as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        if self.i + 4 > self.b.len() {
                            return Err(Error::protocol("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                            .map_err(|_| Error::protocol("invalid \\u escape"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::protocol("invalid \\u escape"))?;
                        self.i += 4;
                        // BMP only; surrogate pairs are not part of this
                        // protocol's vocabulary.
                        out.push(
                            char::from_u32(cp)
                                .ok_or_else(|| Error::protocol("invalid \\u code point"))?,
                        );
                    }
                    c => return Err(Error::protocol(format!("invalid escape '\\{}'", c as char))),
                },
                // Multi-byte UTF-8: pass the raw bytes through. We sliced
                // from a &str, so the sequence is valid by construction.
                c if c < 0x80 => out.push(c as char),
                c => {
                    let start = self.i - 1;
                    let len = if c >= 0xF0 {
                        4
                    } else if c >= 0xE0 {
                        3
                    } else {
                        2
                    };
                    if start + len > self.b.len() {
                        return Err(Error::protocol("truncated UTF-8 sequence"));
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..start + len])
                            .map_err(|_| Error::protocol("invalid UTF-8 in string"))?,
                    );
                    self.i = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::protocol(format!("invalid number '{text}'")))
    }
}

// ---------------------------------------------------------------------------
// Request decoding
// ---------------------------------------------------------------------------

fn get_u64(map: &Map<String, Value>, field: &str) -> Result<u64, Error> {
    match map.get(field) {
        Some(Value::Number(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        Some(_) => Err(Error::protocol(format!("field '{field}' must be a non-negative integer"))),
        None => Err(Error::protocol(format!("missing field '{field}'"))),
    }
}

fn get_str<'m>(map: &'m Map<String, Value>, field: &str) -> Result<&'m str, Error> {
    match map.get(field) {
        Some(Value::String(s)) => Ok(s),
        Some(_) => Err(Error::protocol(format!("field '{field}' must be a string"))),
        None => Err(Error::protocol(format!("missing field '{field}'"))),
    }
}

/// Decodes one request line into a typed query.
pub fn decode_request(line: &str) -> Result<StalenessQuery, Error> {
    let v = parse_json(line)?;
    let Value::Object(map) = v else {
        return Err(Error::protocol("request must be a JSON object"));
    };
    match get_str(&map, "query")? {
        "is_stale" => Ok(StalenessQuery::IsStale(TracerouteId(get_u64(&map, "id")?))),
        "refresh_plan" => {
            Ok(StalenessQuery::RefreshPlan { budget: get_u64(&map, "budget")? as usize })
        }
        "prefix_summary" => {
            let text = get_str(&map, "prefix")?;
            let prefix =
                text.parse().map_err(|e| Error::protocol(format!("field 'prefix': {e}")))?;
            Ok(StalenessQuery::PrefixSummary(prefix))
        }
        "as_summary" => Ok(StalenessQuery::AsSummary(Asn(u32::try_from(get_u64(&map, "asn")?)
            .map_err(|_| Error::protocol("field 'asn' out of range"))?))),
        "corpus_summary" => Ok(StalenessQuery::CorpusSummary),
        "monitor_stats" => Ok(StalenessQuery::MonitorStats),
        "metrics" => Ok(StalenessQuery::Metrics),
        other => Err(Error::protocol(format!("unknown query '{other}'"))),
    }
}

// ---------------------------------------------------------------------------
// Request encoding (clients)
// ---------------------------------------------------------------------------

/// Encodes one request as a single JSON line (no trailing newline): the
/// exact inverse of [`decode_request`], so clients and test harnesses
/// never hand-assemble wire strings.
pub fn encode_request(q: &StalenessQuery) -> String {
    let tag = |name: &'static str| ("query", Value::String(name.into()));
    let fields: Vec<(&'static str, Value)> = match q {
        StalenessQuery::IsStale(id) => vec![tag("is_stale"), ("id", num(id.0))],
        StalenessQuery::RefreshPlan { budget } => {
            vec![tag("refresh_plan"), ("budget", num(*budget as u64))]
        }
        StalenessQuery::PrefixSummary(p) => {
            vec![tag("prefix_summary"), ("prefix", Value::String(p.to_string()))]
        }
        StalenessQuery::AsSummary(a) => vec![tag("as_summary"), ("asn", num(a.0 as u64))],
        StalenessQuery::CorpusSummary => vec![tag("corpus_summary")],
        StalenessQuery::MonitorStats => vec![tag("monitor_stats")],
        StalenessQuery::Metrics => vec![tag("metrics")],
    };
    serde_json::to_string(&obj(fields)).expect("shim serialization is infallible")
}

// ---------------------------------------------------------------------------
// Response decoding (clients)
// ---------------------------------------------------------------------------

fn get_obj<'m>(map: &'m Map<String, Value>, field: &str) -> Result<&'m Map<String, Value>, Error> {
    match map.get(field) {
        Some(Value::Object(m)) => Ok(m),
        Some(_) => Err(Error::protocol(format!("field '{field}' must be an object"))),
        None => Err(Error::protocol(format!("missing field '{field}'"))),
    }
}

fn get_ids(map: &Map<String, Value>, field: &str) -> Result<Vec<TracerouteId>, Error> {
    match map.get(field) {
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| match v {
                Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(TracerouteId(*n as u64)),
                _ => {
                    Err(Error::protocol(format!("field '{field}' must hold non-negative integers")))
                }
            })
            .collect(),
        Some(_) => Err(Error::protocol(format!("field '{field}' must be an array"))),
        None => Err(Error::protocol(format!("missing field '{field}'"))),
    }
}

fn summary_from(map: &Map<String, Value>) -> Result<FreshnessSummary, Error> {
    Ok(FreshnessSummary {
        fresh: get_u64(map, "fresh")? as usize,
        stale: get_u64(map, "stale")? as usize,
        unknown: get_u64(map, "unknown")? as usize,
    })
}

fn family_from(map: &Map<String, Value>, field: &str) -> Result<FamilyStats, Error> {
    let m = get_obj(map, field)?;
    Ok(FamilyStats {
        total: get_u64(m, "total")? as usize,
        ready: get_u64(m, "ready")? as usize,
        gave_up: get_u64(m, "gave_up")? as usize,
    })
}

fn freshness_from(map: &Map<String, Value>) -> Result<Freshness, Error> {
    match get_str(map, "state")? {
        "fresh" => Ok(Freshness::Fresh),
        "unknown" => Ok(Freshness::Unknown),
        "stale" => Ok(Freshness::Stale {
            since: Timestamp(get_u64(map, "since")?),
            asserting: get_u64(map, "asserting")? as usize,
        }),
        other => Err(Error::protocol(format!("unknown freshness state '{other}'"))),
    }
}

/// Decodes one response line into the typed answer: the exact inverse of
/// [`encode_response`]. A server-side `{"error": ...}` line decodes to
/// `Err` carrying the server's message.
pub fn decode_response(line: &str) -> Result<QueryResponse, Error> {
    let v = parse_json(line)?;
    let Value::Object(map) = v else {
        return Err(Error::protocol("response must be a JSON object"));
    };
    if let Some(Value::String(e)) = map.get("error") {
        return Err(Error::protocol(format!("server error: {e}")));
    }
    let epoch = get_u64(&map, "epoch")?;
    let body = get_obj(&map, "body")?;
    let body = match get_str(body, "kind")? {
        "freshness" => ResponseBody::Freshness(match body.get("freshness") {
            Some(Value::Null) => None,
            Some(Value::Object(f)) => Some(freshness_from(f)?),
            _ => return Err(Error::protocol("field 'freshness' must be an object or null")),
        }),
        "plan" => ResponseBody::Plan(RefreshPlan { refresh: get_ids(body, "refresh")? }),
        "prefix_summary" => {
            let text = get_str(body, "prefix")?;
            ResponseBody::Prefix(PrefixSummary {
                prefix: text
                    .parse()
                    .map_err(|e| Error::protocol(format!("field 'prefix': {e}")))?,
                traceroutes: get_ids(body, "traceroutes")?,
                freshness: summary_from(body)?,
            })
        }
        "as_summary" => ResponseBody::As(AsSummary {
            asn: Asn(u32::try_from(get_u64(body, "asn")?)
                .map_err(|_| Error::protocol("field 'asn' out of range"))?),
            traceroutes: get_ids(body, "traceroutes")?,
            freshness: summary_from(body)?,
        }),
        "corpus_summary" => ResponseBody::Corpus(CorpusSummary {
            entries: get_u64(body, "entries")? as usize,
            freshness: summary_from(body)?,
            signals_logged: get_u64(body, "signals_logged")? as usize,
        }),
        "monitor_stats" => ResponseBody::Monitors(MonitorStats {
            subpaths: family_from(body, "subpaths")?,
            borders: family_from(body, "borders")?,
        }),
        "metrics" => ResponseBody::Metrics(get_str(body, "exposition")?.to_string()),
        other => Err(Error::protocol(format!("unknown body kind '{other}'")))?,
    };
    Ok(QueryResponse { epoch, body })
}

// ---------------------------------------------------------------------------
// Response encoding
// ---------------------------------------------------------------------------

fn num(n: u64) -> Value {
    Value::Number(n as f64)
}

fn obj(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn ids(v: &[TracerouteId]) -> Value {
    Value::Array(v.iter().map(|id| num(id.0)).collect())
}

fn freshness_value(f: &Freshness) -> Value {
    match f {
        Freshness::Fresh => obj([("state", Value::String("fresh".into()))]),
        Freshness::Stale { since, asserting } => obj([
            ("state", Value::String("stale".into())),
            ("since", num(since.0)),
            ("asserting", num(*asserting as u64)),
        ]),
        Freshness::Unknown => obj([("state", Value::String("unknown".into()))]),
    }
}

fn summary_fields(s: &FreshnessSummary) -> [(&'static str, Value); 3] {
    [
        ("fresh", num(s.fresh as u64)),
        ("stale", num(s.stale as u64)),
        ("unknown", num(s.unknown as u64)),
    ]
}

fn family_value(f: &FamilyStats) -> Value {
    obj([
        ("total", num(f.total as u64)),
        ("ready", num(f.ready as u64)),
        ("gave_up", num(f.gave_up as u64)),
    ])
}

fn body_value(body: &ResponseBody) -> Value {
    match body {
        ResponseBody::Freshness(f) => obj([
            ("kind", Value::String("freshness".into())),
            ("freshness", f.as_ref().map(freshness_value).unwrap_or(Value::Null)),
        ]),
        ResponseBody::Plan(RefreshPlan { refresh }) => {
            obj([("kind", Value::String("plan".into())), ("refresh", ids(refresh))])
        }
        ResponseBody::Prefix(PrefixSummary { prefix, traceroutes, freshness }) => {
            let mut fields = vec![
                ("kind", Value::String("prefix_summary".into())),
                ("prefix", Value::String(prefix.to_string())),
                ("traceroutes", ids(traceroutes)),
            ];
            fields.extend(summary_fields(freshness));
            obj(fields)
        }
        ResponseBody::As(AsSummary { asn, traceroutes, freshness }) => {
            let mut fields = vec![
                ("kind", Value::String("as_summary".into())),
                ("asn", num(asn.0 as u64)),
                ("traceroutes", ids(traceroutes)),
            ];
            fields.extend(summary_fields(freshness));
            obj(fields)
        }
        ResponseBody::Corpus(CorpusSummary { entries, freshness, signals_logged }) => {
            let mut fields = vec![
                ("kind", Value::String("corpus_summary".into())),
                ("entries", num(*entries as u64)),
            ];
            fields.extend(summary_fields(freshness));
            fields.push(("signals_logged", num(*signals_logged as u64)));
            obj(fields)
        }
        ResponseBody::Monitors(MonitorStats { subpaths, borders }) => obj([
            ("kind", Value::String("monitor_stats".into())),
            ("subpaths", family_value(subpaths)),
            ("borders", family_value(borders)),
        ]),
        // The exposition text contains newlines; the shim escapes them as
        // `\n`, so the response still fits on one wire line.
        ResponseBody::Metrics(text) => obj([
            ("kind", Value::String("metrics".into())),
            ("exposition", Value::String(text.clone())),
        ]),
    }
}

/// Encodes one response as a single JSON line (no trailing newline).
pub fn encode_response(resp: &QueryResponse) -> String {
    serde_json::to_string(&obj([("epoch", num(resp.epoch)), ("body", body_value(&resp.body))]))
        .expect("shim serialization is infallible")
}

/// Encodes one error as a single JSON line (no trailing newline).
pub fn encode_error(err: &Error) -> String {
    serde_json::to_string(&obj([("error", Value::String(err.to_string()))]))
        .expect("shim serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_round_trippable_documents() {
        for text in [
            "null",
            "true",
            "[1,2.5,-3]",
            r#"{"a":[{"b":"c"},null],"d":false}"#,
            r#""esc \"\\\n\tA""#,
        ] {
            let v = parse_json(text).expect("parse");
            // Re-parse the shim's serialization: stable fixed point.
            let encoded = serde_json::to_string(&v).expect("encode");
            let round = parse_json(&encoded).expect("reparse");
            assert_eq!(v, round, "{text}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in ["", "{", "[1,]", "nul", r#"{"a" 1}"#, "1 2", r#""unterminated"#] {
            assert!(parse_json(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn decodes_every_query_shape() {
        assert_eq!(
            decode_request(r#"{"query":"is_stale","id":12}"#).expect("decode"),
            StalenessQuery::IsStale(TracerouteId(12))
        );
        assert_eq!(
            decode_request(r#"{"query":"refresh_plan","budget":4}"#).expect("decode"),
            StalenessQuery::RefreshPlan { budget: 4 }
        );
        assert_eq!(
            decode_request(r#"{"query":"prefix_summary","prefix":"10.0.0.0/16"}"#).expect("decode"),
            StalenessQuery::PrefixSummary("10.0.0.0/16".parse().expect("prefix"))
        );
        assert_eq!(
            decode_request(r#"{"query":"as_summary","asn":101}"#).expect("decode"),
            StalenessQuery::AsSummary(Asn(101))
        );
        assert_eq!(
            decode_request(r#"{"query":"corpus_summary"}"#).expect("decode"),
            StalenessQuery::CorpusSummary
        );
        assert_eq!(
            decode_request(r#"{"query":"monitor_stats"}"#).expect("decode"),
            StalenessQuery::MonitorStats
        );
        assert_eq!(
            decode_request(r#"{"query":"metrics"}"#).expect("decode"),
            StalenessQuery::Metrics
        );
        assert!(decode_request(r#"{"query":"nope"}"#).is_err());
        assert!(decode_request(r#"{"query":"is_stale","id":-1}"#).is_err());
        assert!(decode_request("[]").is_err());
    }

    #[test]
    fn encodes_epoch_and_tagged_body() {
        let resp = QueryResponse {
            epoch: 7,
            body: ResponseBody::Freshness(Some(Freshness::Stale {
                since: Timestamp(900),
                asserting: 2,
            })),
        };
        let line = encode_response(&resp);
        assert!(!line.contains('\n'), "one line: {line}");
        // Parse the encoded line back and check the structure field by
        // field — exact whitespace is the shim's business, not ours.
        let Value::Object(top) = parse_json(&line).expect("self-parse") else {
            panic!("response must be an object: {line}")
        };
        assert_eq!(top.get("epoch"), Some(&Value::Number(7.0)));
        let Some(Value::Object(body)) = top.get("body") else { panic!("missing body: {line}") };
        assert_eq!(body.get("kind"), Some(&Value::String("freshness".into())));
        let Some(Value::Object(f)) = body.get("freshness") else {
            panic!("missing freshness: {line}")
        };
        assert_eq!(f.get("state"), Some(&Value::String("stale".into())));
        assert_eq!(f.get("since"), Some(&Value::Number(900.0)));
        assert_eq!(f.get("asserting"), Some(&Value::Number(2.0)));
        let err = encode_error(&Error::protocol("bad"));
        assert!(err.contains("\"error\""), "{err}");
    }

    #[test]
    fn metrics_exposition_survives_the_wire() {
        let resp = QueryResponse {
            epoch: 3,
            body: ResponseBody::Metrics("# TYPE a counter\na 1\nb{x=\"y\"} 2\n".into()),
        };
        let line = encode_response(&resp);
        assert!(!line.contains('\n'), "one line: {line}");
        let Value::Object(top) = parse_json(&line).expect("self-parse") else {
            panic!("response must be an object: {line}")
        };
        let Some(Value::Object(body)) = top.get("body") else { panic!("missing body: {line}") };
        assert_eq!(body.get("kind"), Some(&Value::String("metrics".into())));
        assert_eq!(
            body.get("exposition"),
            Some(&Value::String("# TYPE a counter\na 1\nb{x=\"y\"} 2\n".into()))
        );
    }
}
