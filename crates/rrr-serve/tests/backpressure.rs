//! Backpressure regression: when the merge loop stalls (here: blocked on
//! a deliberately slow feed), a fast feed may run at most
//! `channel_capacity` batches ahead — its queue-depth gauge tops out at
//! the capacity, its stall counter fires, and once the slow feed catches
//! up the stream drains completely (all depth gauges back to zero) with
//! output bit-identical to the serial replay.

use rrr_core::detector::{DetectorConfig, StalenessDetector};
use rrr_core::Metrics;
use rrr_geo::{GeoDb, Geolocator};
use rrr_ip2as::{AliasResolver, IpToAsMap};
use rrr_serve::{
    canonicalize, split_rounds, Daemon, DaemonConfig, Engine, FeedBatch, FeedSource, ScriptedFeed,
};
use rrr_types::{
    AsPath, Asn, BgpElem, BgpUpdate, CityId, Community, Error, Hop, Ipv4, Prefix, ProbeId,
    Timestamp, Traceroute, TracerouteId, VpId,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NUM_VPS: u32 = 3;
const NUM_DSTS: u32 = 4;
const ROUND: u64 = 900;
const ROUNDS: u64 = 8;
const CAPACITY: usize = 2;

fn ip(s: &str) -> Ipv4 {
    s.parse().expect("valid ip")
}

/// The firing world from `partition_equivalence`: corpus traces traverse
/// AS 101, whose community variants flip mid-run.
fn detector() -> StalenessDetector {
    let topo = Arc::new(rrr_topology::generate(&rrr_topology::TopologyConfig::small(3)));
    let mut map = IpToAsMap::new();
    for i in 0..(2 + NUM_DSTS) {
        map.add_origin(format!("10.{i}.0.0/16").parse::<Prefix>().expect("p"), Asn(100 + i));
    }
    let mut db = GeoDb::default();
    for third in 0..(2 + NUM_DSTS) as u8 {
        for last in 0..32u8 {
            db.insert(Ipv4::new(10, third, 0, last), CityId(third as u16));
        }
    }
    let geo = Geolocator::new(db, vec![]);
    let alias = AliasResolver::from_topology(&topo, 1.0, 0);
    let vps: Vec<VpId> = (0..NUM_VPS).map(VpId).collect();
    let mut det = StalenessDetector::new(
        topo,
        map,
        geo,
        alias,
        vps,
        DetectorConfig { seed: 42, threads: 1, ..DetectorConfig::default() },
    );
    det.init_rib(&rib_seed());
    for dst in 0..NUM_DSTS {
        det.add_corpus(corpus_trace(1 + dst as u64, dst), None).expect("corpus trace valid");
    }
    det
}

fn corpus_trace(id: u64, dst_idx: u32) -> Traceroute {
    let d = 2 + dst_idx;
    Traceroute {
        id: TracerouteId(id),
        probe: ProbeId(dst_idx),
        src: ip("10.0.0.200"),
        dst: Ipv4::new(10, d as u8, 0, 1),
        time: Timestamp(0),
        hops: vec![
            Hop::responsive(ip("10.0.0.2")),
            Hop::responsive(ip("10.1.0.1")),
            Hop::responsive(Ipv4::new(10, d as u8, 0, 1)),
        ],
        reached: true,
    }
}

/// One announce (or community flip) for `(vp, dst)` in round `r`.
fn upd(vp: u32, dst: u32, r: u64, flip: bool) -> BgpUpdate {
    let prefix: Prefix = format!("10.{}.0.0/16", 2 + dst).parse().expect("p");
    let origin = 102 + dst;
    let comm = if flip {
        vec![Community::new(101, 50_002 + (r % 2) as u32)]
    } else {
        vec![Community::new(101, 50_001)]
    };
    BgpUpdate {
        time: Timestamp(r * ROUND + vp as u64 * 31 + dst as u64 * 7),
        vp: VpId(vp),
        prefix,
        elem: BgpElem::Announce {
            path: AsPath::from_asns([90 + vp, 101, origin]),
            communities: comm,
        },
    }
}

fn rib_seed() -> Vec<BgpUpdate> {
    let mut rib = Vec::new();
    for dst in 0..NUM_DSTS {
        for vp in 0..NUM_VPS {
            rib.push(upd(vp, dst, 0, false));
        }
    }
    rib
}

fn scripted_rounds() -> Vec<FeedBatch> {
    (0..ROUNDS)
        .map(|r| {
            let mut updates: Vec<BgpUpdate> = (0..NUM_VPS)
                .flat_map(|vp| {
                    (0..NUM_DSTS).map(move |dst| upd(vp, dst, r, r % 4 == 3 && dst == 0))
                })
                .collect();
            updates.sort_by_key(|u| u.time);
            FeedBatch { now: Timestamp((r + 1) * ROUND), updates, public: Vec::new() }
        })
        .collect()
}

/// A feed that refuses to emit anything until released — while it holds
/// the merge loop hostage, the fast feed must hit the channel bound.
struct GatedFeed {
    release: Arc<AtomicBool>,
    batches: VecDeque<FeedBatch>,
}

impl FeedSource for GatedFeed {
    fn next_batch(&mut self) -> Result<Option<FeedBatch>, Error> {
        while !self.release.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(self.batches.pop_front())
    }
}

#[test]
fn fast_feed_is_bounded_by_channel_capacity() {
    let steps = scripted_rounds();

    // Serial ground truth for the post-drain equivalence check.
    let mut reference = detector();
    let mut want = Vec::new();
    for b in canonicalize(&steps) {
        want.extend(reference.step(b.now, &b.updates, &b.public));
    }
    assert!(!want.is_empty(), "scenario must fire signals");

    let split = split_rounds(&steps, 2);
    let release = Arc::new(AtomicBool::new(false));
    let feeds: Vec<Box<dyn FeedSource>> = vec![
        // Feed 0: fast, fully scripted.
        Box::new(ScriptedFeed::new(split[0].clone())),
        // Feed 1: blocked until we saw the backpressure engage.
        Box::new(GatedFeed { release: Arc::clone(&release), batches: split[1].clone().into() }),
    ];

    let metrics = Metrics::enabled();
    let daemon = Daemon::spawn(
        Engine::Plain(detector()),
        feeds,
        DaemonConfig {
            channel_capacity: CAPACITY,
            record_snapshots: true,
            metrics: metrics.clone(),
        },
    );

    // While the merge loop is starved on feed 1, feed 0 must fill its
    // channel to exactly `CAPACITY` queued batches and then stall.
    let deadline = Instant::now() + Duration::from_secs(30);
    let (depth_key, stall_key) =
        ("rrr_serve_queue_depth{feed=\"0\"}", "rrr_serve_backpressure_stalls_total{feed=\"0\"}");
    loop {
        let snap = metrics.snapshot();
        let depth = snap.gauge(depth_key);
        assert!(depth <= CAPACITY as i64, "queue depth {depth} broke the channel bound");
        if depth == CAPACITY as i64 && snap.counter(stall_key) >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "backpressure never engaged: depth={depth}");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Release the slow feed; the stream must drain to the same output the
    // serial replay produces.
    release.store(true, Ordering::Release);
    let report = daemon.join().expect("daemon drains after release");
    assert_eq!(report.signals, want, "backpressure perturbed the merged stream");
    assert!(!report.snapshots.is_empty(), "windows closed while stalled");

    let snap = metrics.snapshot();
    assert!(snap.counter(stall_key) >= 1, "stall counter must record the blocked send");
    for feed in 0..2 {
        let key = format!("rrr_serve_queue_depth{{feed=\"{feed}\"}}");
        assert_eq!(snap.gauge(&key), 0, "feed {feed} queue must drain to zero");
    }
    assert_eq!(
        snap.counter("rrr_serve_feed_batches_total{feed=\"0\"}"),
        ROUNDS,
        "every fast-feed batch must eventually be accepted"
    );
}
