//! Property tests over the line-delimited-JSON wire protocol: every
//! encodable request and response must round-trip through its decoder
//! bit-exactly, and no truncated or garbage line may panic the parser —
//! a malformed line fails with a typed error, nothing more.
//!
//! Wire numbers travel as `f64`, so every sampled integer stays below
//! 2^53 — the largest contiguous integer range a double represents
//! exactly. Larger ids would be a protocol bug, not a test concern.

use proptest::prelude::*;
use rrr_core::{
    AsSummary, CorpusSummary, FamilyStats, Freshness, FreshnessSummary, MonitorStats,
    PrefixSummary, RefreshPlan,
};
use rrr_serve::wire::{
    decode_request, decode_response, encode_error, encode_request, encode_response,
};
use rrr_serve::{QueryResponse, ResponseBody, StalenessQuery};
use rrr_types::{Asn, Error, Ipv4, Prefix, Timestamp, TracerouteId};

/// Exact-in-f64 ceiling for wire integers.
const MAX_WIRE_INT: u64 = 1 << 53;

fn query_from(kind: u8, n: u64, addr: u32, len: u8) -> StalenessQuery {
    match kind {
        0 => StalenessQuery::IsStale(TracerouteId(n)),
        1 => StalenessQuery::RefreshPlan { budget: n as usize },
        2 => StalenessQuery::PrefixSummary(Prefix::new(Ipv4(addr), len)),
        3 => StalenessQuery::AsSummary(Asn(addr)),
        4 => StalenessQuery::CorpusSummary,
        5 => StalenessQuery::MonitorStats,
        _ => StalenessQuery::Metrics,
    }
}

fn ids_from(raw: &[u64]) -> Vec<TracerouteId> {
    raw.iter().map(|&n| TracerouteId(n)).collect()
}

fn summary_from(raw: (u64, u64, u64)) -> FreshnessSummary {
    FreshnessSummary { fresh: raw.0 as usize, stale: raw.1 as usize, unknown: raw.2 as usize }
}

/// Exposition text sampled over a palette that includes everything the
/// single-line framing has to escape: newlines, tabs, quotes,
/// backslashes, braces, and multi-byte UTF-8.
fn exposition_from(raw: &[u8]) -> String {
    const PALETTE: [char; 12] = ['a', 'Z', '0', ' ', '\n', '\t', '"', '\\', '{', '}', 'µ', '#'];
    raw.iter().map(|&b| PALETTE[b as usize % PALETTE.len()]).collect()
}

fn assert_response_round_trips(resp: &QueryResponse) {
    let line = encode_response(resp);
    assert!(!line.contains('\n'), "one wire line: {line}");
    let back = decode_response(&line)
        .unwrap_or_else(|e| panic!("self-encoded line must decode: {e} in {line}"));
    assert_eq!(&back, resp, "wire: {line}");
}

proptest! {
    /// `decode_request` inverts `encode_request` for every variant over
    /// the full wire-safe integer range.
    #[test]
    fn every_request_round_trips(
        kind in 0u8..7,
        n in 0u64..MAX_WIRE_INT,
        addr in any::<u32>(),
        len in 0u8..33,
    ) {
        let q = query_from(kind, n, addr, len);
        let line = encode_request(&q);
        prop_assert!(!line.contains('\n'), "one wire line: {}", line);
        let back = decode_request(&line)
            .unwrap_or_else(|e| panic!("self-encoded line must decode: {e} in {line}"));
        prop_assert_eq!(back, q, "wire: {}", line);
    }

    /// Every strict prefix of a valid request line is rejected with an
    /// error — never a panic, never a silent success.
    #[test]
    fn truncated_requests_are_rejected(
        kind in 0u8..7,
        n in 0u64..MAX_WIRE_INT,
        addr in any::<u32>(),
        len in 0u8..33,
        cut in any::<usize>(),
    ) {
        let line = encode_request(&query_from(kind, n, addr, len));
        let cut = cut % line.len();
        prop_assert!(
            decode_request(&line[..cut]).is_err(),
            "prefix {:?} of {:?} must not decode",
            &line[..cut],
            line
        );
    }

    /// Freshness and plan responses round-trip, including the
    /// not-in-corpus `None` and the stale state's payload fields.
    #[test]
    fn freshness_and_plan_responses_round_trip(
        epoch in 0u64..MAX_WIRE_INT,
        state in 0u8..4,
        since in 0u64..MAX_WIRE_INT,
        asserting in 0u64..MAX_WIRE_INT,
        raw_ids in proptest::collection::vec(0u64..MAX_WIRE_INT, 0..8),
    ) {
        let freshness = match state {
            0 => None,
            1 => Some(Freshness::Fresh),
            2 => Some(Freshness::Unknown),
            _ => Some(Freshness::Stale {
                since: Timestamp(since),
                asserting: asserting as usize,
            }),
        };
        assert_response_round_trips(&QueryResponse {
            epoch,
            body: ResponseBody::Freshness(freshness),
        });
        assert_response_round_trips(&QueryResponse {
            epoch,
            body: ResponseBody::Plan(RefreshPlan { refresh: ids_from(&raw_ids) }),
        });
    }

    /// The three summary bodies (prefix, AS, corpus) round-trip with
    /// their id lists and freshness tallies intact.
    #[test]
    fn summary_responses_round_trip(
        epoch in 0u64..MAX_WIRE_INT,
        addr_len in (any::<u32>(), 0u8..33),
        raw_ids in proptest::collection::vec(0u64..MAX_WIRE_INT, 0..8),
        tallies in (0u64..MAX_WIRE_INT, 0u64..MAX_WIRE_INT, 0u64..MAX_WIRE_INT),
        counts in (any::<u32>(), 0u64..MAX_WIRE_INT),
    ) {
        let freshness = summary_from(tallies);
        assert_response_round_trips(&QueryResponse {
            epoch,
            body: ResponseBody::Prefix(PrefixSummary {
                prefix: Prefix::new(Ipv4(addr_len.0), addr_len.1),
                traceroutes: ids_from(&raw_ids),
                freshness,
            }),
        });
        assert_response_round_trips(&QueryResponse {
            epoch,
            body: ResponseBody::As(AsSummary {
                asn: Asn(counts.0),
                traceroutes: ids_from(&raw_ids),
                freshness,
            }),
        });
        assert_response_round_trips(&QueryResponse {
            epoch,
            body: ResponseBody::Corpus(CorpusSummary {
                entries: raw_ids.len(),
                freshness,
                signals_logged: counts.1 as usize,
            }),
        });
    }

    /// Monitor inventories and metrics expositions round-trip; the
    /// exposition exercises every character the framing must escape.
    #[test]
    fn monitors_and_metrics_round_trip(
        epoch in 0u64..MAX_WIRE_INT,
        sub in (0u64..MAX_WIRE_INT, 0u64..MAX_WIRE_INT, 0u64..MAX_WIRE_INT),
        bord in (0u64..MAX_WIRE_INT, 0u64..MAX_WIRE_INT, 0u64..MAX_WIRE_INT),
        raw_text in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let family = |f: (u64, u64, u64)| FamilyStats {
            total: f.0 as usize,
            ready: f.1 as usize,
            gave_up: f.2 as usize,
        };
        assert_response_round_trips(&QueryResponse {
            epoch,
            body: ResponseBody::Monitors(MonitorStats {
                subpaths: family(sub),
                borders: family(bord),
            }),
        });
        assert_response_round_trips(&QueryResponse {
            epoch,
            body: ResponseBody::Metrics(exposition_from(&raw_text)),
        });
    }

    /// Arbitrary byte soup never panics either decoder: each call
    /// returns `Ok` or a typed error, and a response line carrying
    /// `{"error": ...}` surfaces the server's message as `Err`.
    #[test]
    fn garbage_never_panics_and_errors_are_surfaced(
        raw in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let soup = String::from_utf8_lossy(&raw);
        let _ = decode_request(&soup);
        let _ = decode_response(&soup);
        let line = encode_error(&Error::protocol(soup.to_string()));
        prop_assert!(!line.contains('\n'), "one wire line: {}", line);
        prop_assert!(
            decode_response(&line).is_err(),
            "an error line must decode to Err: {}",
            line
        );
    }
}
