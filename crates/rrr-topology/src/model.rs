//! The immutable topology model: ASes, adjacencies, peering points, routers,
//! IXPs, intra-AS paths, and the address plan.

use crate::registry::Registry;
use rrr_types::{Asn, CityId, Ipv4, IxpId, PeeringPointId, Prefix, RouterId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense index of an AS inside a [`Topology`] (not the ASN itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AsIdx(pub u32);

impl AsIdx {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense index of an adjacency (an AS-AS edge, possibly with several
/// peering points).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AdjacencyId(pub u32);

impl AdjacencyId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Position of an AS in the transit hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Member of the peering clique at the top.
    Tier1,
    /// Large transit provider.
    Transit,
    /// Regional provider.
    Regional,
    /// Edge network: originates prefixes, provides no transit.
    Stub,
}

/// The business relationship of *a neighbor* relative to the local AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relationship {
    /// The neighbor pays us: we provide transit to it.
    Customer,
    /// We pay the neighbor for transit.
    Provider,
    /// Settlement-free peer.
    Peer,
}

impl Relationship {
    /// The same edge viewed from the other endpoint.
    pub fn inverse(self) -> Relationship {
        match self {
            Relationship::Customer => Relationship::Provider,
            Relationship::Provider => Relationship::Customer,
            Relationship::Peer => Relationship::Peer,
        }
    }
}

/// A reference from an AS to one of its neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeighborRef {
    pub peer: AsIdx,
    pub adj: AdjacencyId,
    /// Relationship of `peer` relative to the owning AS.
    pub rel: Relationship,
}

/// One autonomous system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsInfo {
    pub asn: Asn,
    pub tier: Tier,
    /// Cities where this AS has a presence (and a city router).
    pub cities: Vec<CityId>,
    /// The AS's /16 allocation; infrastructure and originated space both
    /// live inside it.
    pub block: Prefix,
    /// Prefixes this AS originates into BGP (includes the covering block and
    /// more specific subnets).
    pub originated: Vec<Prefix>,
    /// Neighbor adjacencies.
    pub neighbors: Vec<NeighborRef>,
    /// Whether this AS strips BGP communities when propagating routes
    /// (§4.1.3 discusses the artifacts this causes).
    pub strips_communities: bool,
    /// City used for intra-AS cost tie-breaking (the AS's backbone hub).
    pub hub_city: CityId,
}

impl AsInfo {
    /// The neighbor reference for `peer`, if adjacent.
    pub fn neighbor(&self, peer: AsIdx) -> Option<&NeighborRef> {
        self.neighbors.iter().find(|n| n.peer == peer)
    }

    /// Whether the AS is present in `city`.
    pub fn in_city(&self, city: CityId) -> bool {
        self.cities.contains(&city)
    }
}

/// An AS-AS adjacency. `rel_b` gives `b`'s relationship relative to `a`
/// (e.g. `Customer` means "b is a's customer").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adjacency {
    pub id: AdjacencyId,
    pub a: AsIdx,
    pub b: AsIdx,
    /// Relationship of `b` relative to `a`.
    pub rel_b: Relationship,
    /// The physical interconnection points implementing this adjacency.
    pub points: Vec<PeeringPointId>,
    /// Whether the adjacency load-balances across *all* its points
    /// simultaneously (an interdomain ECMP "diamond", §5.4) instead of
    /// hot-potato selecting a single point per ingress.
    pub ecmp: bool,
    /// Latent adjacencies exist physically (routers, interfaces) but carry
    /// no sessions until an IXP-join event activates them (§4.2.3). They are
    /// absent from the initial registry and initial IXP member lists.
    pub latent: bool,
}

impl Adjacency {
    /// The other endpoint of the edge.
    pub fn other(&self, me: AsIdx) -> AsIdx {
        if self.a == me {
            self.b
        } else {
            debug_assert_eq!(self.b, me);
            self.a
        }
    }
}

/// One physical interconnection between two ASes: a pair of border-router
/// interfaces in a city, either on a private cross-connect or an IXP LAN.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeeringPoint {
    pub id: PeeringPointId,
    pub adj: AdjacencyId,
    pub city: CityId,
    /// Set when the interconnection is over an IXP's shared fabric.
    pub ixp: Option<IxpId>,
    /// Whether routes over an IXP point traverse the IXP's route server
    /// (inserting the IXP ASN into AS paths, which the pipeline must strip,
    /// §4.1.1).
    pub route_server: bool,
    pub a_router: RouterId,
    pub b_router: RouterId,
    /// `a`'s interface address on the interconnection medium.
    pub a_iface: Ipv4,
    /// `b`'s interface address on the interconnection medium.
    pub b_iface: Ipv4,
    /// Static IGP cost offsets added to the distance-based cost when either
    /// side evaluates this point as an egress (perturbed by events).
    pub bias_a: u32,
    pub bias_b: u32,
}

impl PeeringPoint {
    /// Interface and router of the given side (`true` = side `a`).
    pub fn side(&self, is_a: bool) -> (RouterId, Ipv4) {
        if is_a {
            (self.a_router, self.a_iface)
        } else {
            (self.b_router, self.b_iface)
        }
    }
}

/// A router. Each AS has one "city router" per city of presence; diamonds
/// add auxiliary mid routers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Router {
    pub id: RouterId,
    pub owner: AsIdx,
    pub city: CityId,
    /// The router's canonical internal interface address.
    pub internal_iface: Ipv4,
    /// All interface addresses (internal, link, IXP LAN) — the alias set.
    pub ifaces: Vec<Ipv4>,
    /// Routers that never answer traceroute probes.
    pub responsive: bool,
    /// `true` for the per-(AS, city) border/core router; `false` for
    /// auxiliary diamond mid-routers.
    pub is_city_router: bool,
}

/// An Internet exchange point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ixp {
    pub id: IxpId,
    /// The route-server ASN (to be stripped from AS paths).
    pub asn: Asn,
    pub city: CityId,
    /// The shared LAN prefix; member interfaces live here.
    pub lan: Prefix,
    /// Initial member ASes (ground truth).
    pub members: Vec<AsIdx>,
}

/// Who owns an IP address, per the topology's regular address plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpOwner {
    As(AsIdx),
    Ixp(IxpId),
    Unknown,
}

/// Address-plan constants. Every AS gets a /16 at `AS_BASE + idx << 16`;
/// every IXP a /20 at `IXP_BASE + idx << 12`.
pub mod plan {
    /// 16.0.0.0 — base of AS /16 blocks.
    pub const AS_BASE: u32 = 0x1000_0000;
    /// 11.0.0.0 — base of IXP /20 LANs.
    pub const IXP_BASE: u32 = 0x0B00_0000;
    /// Offsets inside an AS /16 block.
    pub const ROUTER_IFACE_OFF: u32 = 0x8000;
    pub const LINK_SUBNET_OFF: u32 = 0x9000;
    pub const HOST_OFF: u32 = 0xC000;
    /// Max ASes representable without block overlap below the IXP base.
    pub const MAX_ASES: u32 = 0x0400_0000 >> 16; // 16.0.0.0..20.0.0.0 => 1024
}

/// The complete immutable topology.
#[derive(Debug, Clone)]
pub struct Topology {
    pub ases: Vec<AsInfo>,
    pub adjacencies: Vec<Adjacency>,
    pub points: Vec<PeeringPoint>,
    pub routers: Vec<Router>,
    pub ixps: Vec<Ixp>,
    /// Number of cities in use (prefix of [`crate::CITY_TABLE`]).
    pub num_cities: usize,
    /// ASN → dense index.
    pub asn_index: HashMap<Asn, AsIdx>,
    /// Interface address → owning router.
    pub iface_owner: HashMap<Ipv4, RouterId>,
    /// Intra-AS parallel branch sets: (AS, from city, to city) → branches,
    /// each branch a list of mid-router internal interfaces (possibly empty
    /// = direct). More than one branch means an intradomain ECMP diamond.
    pub intra: HashMap<(AsIdx, CityId, CityId), Vec<Vec<Ipv4>>>,
    /// The PeeringDB-like registry visible to inference tools.
    pub registry: Registry,
    /// (AS, city) → city router, built by the generator.
    pub city_router_index: HashMap<(AsIdx, CityId), RouterId>,
}

impl Topology {
    pub fn num_ases(&self) -> usize {
        self.ases.len()
    }

    pub fn as_info(&self, idx: AsIdx) -> &AsInfo {
        &self.ases[idx.index()]
    }

    pub fn asn_of(&self, idx: AsIdx) -> Asn {
        self.ases[idx.index()].asn
    }

    pub fn idx_of(&self, asn: Asn) -> Option<AsIdx> {
        self.asn_index.get(&asn).copied()
    }

    pub fn adjacency(&self, id: AdjacencyId) -> &Adjacency {
        &self.adjacencies[id.index()]
    }

    pub fn point(&self, id: PeeringPointId) -> &PeeringPoint {
        &self.points[id.index()]
    }

    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.index()]
    }

    pub fn ixp(&self, id: IxpId) -> &Ixp {
        &self.ixps[id.index()]
    }

    /// The adjacency between two ASes, if any.
    pub fn adjacency_between(&self, x: AsIdx, y: AsIdx) -> Option<&Adjacency> {
        self.as_info(x).neighbor(y).map(|n| self.adjacency(n.adj))
    }

    /// Relationship of `y` relative to `x`, if adjacent.
    pub fn rel(&self, x: AsIdx, y: AsIdx) -> Option<Relationship> {
        self.as_info(x).neighbor(y).map(|n| n.rel)
    }

    /// Owner of an address under the regular address plan.
    pub fn owner_of_ip(&self, ip: Ipv4) -> IpOwner {
        let v = ip.value();
        if v >= plan::AS_BASE {
            let idx = (v - plan::AS_BASE) >> 16;
            if (idx as usize) < self.ases.len() {
                return IpOwner::As(AsIdx(idx));
            }
        } else if v >= plan::IXP_BASE {
            let idx = (v - plan::IXP_BASE) >> 12;
            if (idx as usize) < self.ixps.len() {
                return IpOwner::Ixp(IxpId(idx as u16));
            }
        }
        IpOwner::Unknown
    }

    /// The router that owns interface `ip`, if any (alias ground truth).
    pub fn router_of_iface(&self, ip: Ipv4) -> Option<RouterId> {
        self.iface_owner.get(&ip).copied()
    }

    /// The `k`-th host (probe/server) address of an AS.
    pub fn host_addr(&self, idx: AsIdx, k: u32) -> Ipv4 {
        assert!(k < 0x4000, "host index {k} exhausts the host range");
        Ipv4(self.as_info(idx).block.network().value() + plan::HOST_OFF + k)
    }

    /// The city router of an AS in a city, if present. City routers are
    /// created first, one per (AS, city), in AS-then-city order, so this is
    /// a lookup table built at generation time.
    pub fn city_router(&self, idx: AsIdx, city: CityId) -> Option<RouterId> {
        // Router vectors are small per AS; linear scan over the AS's cities
        // via the router table is avoided by the generator storing city
        // routers first with a deterministic layout.
        self.city_router_index.get(&(idx, city)).copied()
    }

    /// IGP cost between two cities of an AS: great-circle distance in km,
    /// which both the control plane (hot-potato egress choice) and the data
    /// plane share. Same-city cost is 0.
    pub fn igp_base_cost(&self, from: CityId, to: CityId) -> u32 {
        if from == to {
            return 0;
        }
        let a = crate::city::city(from).point();
        let b = crate::city::city(to).point();
        a.distance_km(b).round() as u32
    }

    /// All destination prefixes with their origin AS.
    pub fn all_originations(&self) -> impl Iterator<Item = (Prefix, AsIdx)> + '_ {
        self.ases
            .iter()
            .enumerate()
            .flat_map(|(i, info)| info.originated.iter().map(move |p| (*p, AsIdx(i as u32))))
    }

    /// Intra-AS branch set between two cities (empty-branch singleton when
    /// no entry was generated, i.e. a direct internal hop).
    pub fn intra_branches(&self, idx: AsIdx, from: CityId, to: CityId) -> &[Vec<Ipv4>] {
        static DIRECT: &[Vec<Ipv4>] = &[Vec::new()];
        match self.intra.get(&(idx, from, to)) {
            Some(b) => b,
            None => DIRECT,
        }
    }
}

// The lookup table is part of the struct; kept separate in declaration order
// for readability of the public fields above.
impl Topology {
    pub(crate) fn build_city_router_index(&mut self) {
        self.city_router_index = self
            .routers
            .iter()
            .filter(|r| r.is_city_router)
            .map(|r| ((r.owner, r.city), r.id))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relationship_inverse() {
        assert_eq!(Relationship::Customer.inverse(), Relationship::Provider);
        assert_eq!(Relationship::Provider.inverse(), Relationship::Customer);
        assert_eq!(Relationship::Peer.inverse(), Relationship::Peer);
    }

    #[test]
    // The point of this test is exactly to assert relations on constants.
    #[allow(clippy::assertions_on_constants)]
    fn plan_constants_disjoint() {
        // IXP space must end below AS space for owner_of_ip dispatch.
        let max_ixp = plan::IXP_BASE + (0xFF << 12);
        assert!(max_ixp < plan::AS_BASE);
        assert!(plan::ROUTER_IFACE_OFF < plan::LINK_SUBNET_OFF);
        assert!(plan::LINK_SUBNET_OFF < plan::HOST_OFF);
    }
}
