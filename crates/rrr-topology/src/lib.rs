//! Synthetic Internet topology for the `rrr` workspace.
//!
//! The paper's techniques operate on real RouteViews/RIS BGP feeds and RIPE
//! Atlas traceroutes. Reproducing them offline requires an Internet whose
//! *structure* exhibits the phenomena the techniques exploit:
//!
//! - a policy-routed AS graph (tier-1 clique, transit hierarchy, stubs) with
//!   customer/provider and peer relationships (Gao–Rexford),
//! - ASes present in multiple cities, interconnecting at **multiple peering
//!   points** per adjacency (private facilities and IXP LANs), so that an AS
//!   pair can shift traffic between border routers *without any AS-path
//!   change* — the border-level changes of §3,
//! - border routers with multiple interface addresses (alias sets), IXP LAN
//!   addresses shared across many AS pairs (Appendix C, Figure 14),
//! - intra-AS paths between cities, optionally with ECMP diamonds (§5.4),
//! - originated prefixes with realistic overlap (covering /16s plus more
//!   specific subnets) for longest-prefix matching.
//!
//! The topology itself is immutable; dynamic state (link availability, IGP
//! costs, policy) lives in `rrr-bgp`'s overlay.

pub mod city;
pub mod config;
pub mod gen;
pub mod lazy;
pub mod model;
pub mod registry;

pub use city::{City, CITY_TABLE};
pub use config::TopologyConfig;
pub use gen::generate;
pub use lazy::{LazyConfig, LazyTopology, PathVariant};
pub use model::{
    Adjacency, AdjacencyId, AsIdx, AsInfo, IpOwner, Ixp, PeeringPoint, Relationship, Router, Tier,
    Topology,
};
pub use registry::Registry;
