//! A fixed table of world cities used to place ASes, facilities, and IXPs.

use rrr_types::{CityId, GeoPoint};

/// A city with a human-readable name and coordinates.
#[derive(Debug, Clone, Copy)]
pub struct City {
    pub name: &'static str,
    pub lat: f64,
    pub lon: f64,
}

impl City {
    pub fn point(&self) -> GeoPoint {
        GeoPoint::new(self.lat, self.lon)
    }
}

/// Sixty real interconnection hubs. The generator draws AS footprints from a
/// prefix of this table (bigger deployments use more cities).
pub const CITY_TABLE: &[City] = &[
    City { name: "London", lat: 51.5074, lon: -0.1278 },
    City { name: "Frankfurt", lat: 50.1109, lon: 8.6821 },
    City { name: "Amsterdam", lat: 52.3676, lon: 4.9041 },
    City { name: "Paris", lat: 48.8566, lon: 2.3522 },
    City { name: "New York", lat: 40.7128, lon: -74.0060 },
    City { name: "Ashburn", lat: 39.0438, lon: -77.4874 },
    City { name: "San Jose", lat: 37.3382, lon: -121.8863 },
    City { name: "Los Angeles", lat: 34.0522, lon: -118.2437 },
    City { name: "Chicago", lat: 41.8781, lon: -87.6298 },
    City { name: "Dallas", lat: 32.7767, lon: -96.7970 },
    City { name: "Miami", lat: 25.7617, lon: -80.1918 },
    City { name: "Seattle", lat: 47.6062, lon: -122.3321 },
    City { name: "Toronto", lat: 43.6532, lon: -79.3832 },
    City { name: "Sao Paulo", lat: -23.5505, lon: -46.6333 },
    City { name: "Buenos Aires", lat: -34.6037, lon: -58.3816 },
    City { name: "Tokyo", lat: 35.6762, lon: 139.6503 },
    City { name: "Osaka", lat: 34.6937, lon: 135.5023 },
    City { name: "Singapore", lat: 1.3521, lon: 103.8198 },
    City { name: "Hong Kong", lat: 22.3193, lon: 114.1694 },
    City { name: "Sydney", lat: -33.8688, lon: 151.2093 },
    City { name: "Mumbai", lat: 19.0760, lon: 72.8777 },
    City { name: "Chennai", lat: 13.0827, lon: 80.2707 },
    City { name: "Dubai", lat: 25.2048, lon: 55.2708 },
    City { name: "Johannesburg", lat: -26.2041, lon: 28.0473 },
    City { name: "Nairobi", lat: -1.2921, lon: 36.8219 },
    City { name: "Stockholm", lat: 59.3293, lon: 18.0686 },
    City { name: "Copenhagen", lat: 55.6761, lon: 12.5683 },
    City { name: "Oslo", lat: 59.9139, lon: 10.7522 },
    City { name: "Helsinki", lat: 60.1699, lon: 24.9384 },
    City { name: "Warsaw", lat: 52.2297, lon: 21.0122 },
    City { name: "Prague", lat: 50.0755, lon: 14.4378 },
    City { name: "Vienna", lat: 48.2082, lon: 16.3738 },
    City { name: "Zurich", lat: 47.3769, lon: 8.5417 },
    City { name: "Milan", lat: 45.4642, lon: 9.1900 },
    City { name: "Madrid", lat: 40.4168, lon: -3.7038 },
    City { name: "Lisbon", lat: 38.7223, lon: -9.1393 },
    City { name: "Dublin", lat: 53.3498, lon: -6.2603 },
    City { name: "Brussels", lat: 50.8503, lon: 4.3517 },
    City { name: "Bucharest", lat: 44.4268, lon: 26.1025 },
    City { name: "Sofia", lat: 42.6977, lon: 23.3219 },
    City { name: "Istanbul", lat: 41.0082, lon: 28.9784 },
    City { name: "Moscow", lat: 55.7558, lon: 37.6173 },
    City { name: "Kyiv", lat: 50.4501, lon: 30.5234 },
    City { name: "Seoul", lat: 37.5665, lon: 126.9780 },
    City { name: "Taipei", lat: 25.0330, lon: 121.5654 },
    City { name: "Jakarta", lat: -6.2088, lon: 106.8456 },
    City { name: "Kuala Lumpur", lat: 3.1390, lon: 101.6869 },
    City { name: "Bangkok", lat: 13.7563, lon: 100.5018 },
    City { name: "Manila", lat: 14.5995, lon: 120.9842 },
    City { name: "Auckland", lat: -36.8485, lon: 174.7633 },
    City { name: "Perth", lat: -31.9505, lon: 115.8605 },
    City { name: "Santiago", lat: -33.4489, lon: -70.6693 },
    City { name: "Bogota", lat: 4.7110, lon: -74.0721 },
    City { name: "Mexico City", lat: 19.4326, lon: -99.1332 },
    City { name: "Atlanta", lat: 33.7490, lon: -84.3880 },
    City { name: "Denver", lat: 39.7392, lon: -104.9903 },
    City { name: "Phoenix", lat: 33.4484, lon: -112.0740 },
    City { name: "Montreal", lat: 45.5019, lon: -73.5674 },
    City { name: "Vancouver", lat: 49.2827, lon: -123.1207 },
    City { name: "Cairo", lat: 30.0444, lon: 31.2357 },
];

/// Looks up a city by id.
///
/// # Panics
/// Panics if `id` is out of range for the table.
pub fn city(id: CityId) -> &'static City {
    &CITY_TABLE[id.0 as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_nonempty_and_unique() {
        assert!(CITY_TABLE.len() >= 40);
        for (i, a) in CITY_TABLE.iter().enumerate() {
            for b in &CITY_TABLE[i + 1..] {
                assert_ne!(a.name, b.name);
                assert!(a.point().distance_km(b.point()) > 1.0);
            }
        }
    }

    #[test]
    fn lookup() {
        assert_eq!(city(CityId(0)).name, "London");
        assert_eq!(city(CityId(1)).name, "Frankfurt");
    }
}
