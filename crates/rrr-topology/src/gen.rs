//! Seeded topology generation.

use crate::config::TopologyConfig;
use crate::model::{
    plan, Adjacency, AdjacencyId, AsIdx, AsInfo, Ixp, NeighborRef, PeeringPoint, Relationship,
    Router, Tier, Topology,
};
use crate::registry::{Facility, Registry};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rrr_types::{Asn, CityId, FacilityId, Ipv4, IxpId, PeeringPointId, Prefix, RouterId};
use std::collections::{HashMap, HashSet};

/// Generates a topology from a config. Deterministic in `cfg.seed`.
///
/// # Panics
/// Panics if the config exceeds the address plan (more than 1024 ASes or
/// 256 IXPs) or names more cities than the city table holds.
pub fn generate(cfg: &TopologyConfig) -> Topology {
    assert!(cfg.num_ases as u32 <= plan::MAX_ASES, "too many ASes for the address plan");
    assert!(cfg.num_ixps <= 256, "too many IXPs for the address plan");
    assert!(cfg.num_cities <= crate::city::CITY_TABLE.len(), "num_cities exceeds the city table");
    assert!(cfg.num_tier1 >= 2 && cfg.num_tier1 <= cfg.num_ases);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = Gen::new(cfg);

    g.assign_tiers_and_cities(&mut rng);
    g.build_edges(&mut rng);
    g.build_ixps(&mut rng);
    g.create_routers(&mut rng);
    g.create_points(&mut rng);
    g.create_intra_diamonds(&mut rng);
    g.originate_prefixes(&mut rng);
    g.build_registry(&mut rng);
    g.finish()
}

/// Working state of the generator.
struct Gen<'c> {
    cfg: &'c TopologyConfig,
    tiers: Vec<Tier>,
    cities: Vec<Vec<CityId>>,
    /// (a, b, rel_b, via ixp, latent)
    edges: Vec<(AsIdx, AsIdx, Relationship, Option<IxpId>, bool)>,
    edge_set: HashSet<(AsIdx, AsIdx)>,
    ixps: Vec<Ixp>,
    routers: Vec<Router>,
    city_router: HashMap<(AsIdx, CityId), RouterId>,
    /// per-AS counter of internal interface addresses handed out
    iface_counter: Vec<u32>,
    /// per-AS counter of link subnets handed out
    link_counter: Vec<u32>,
    /// per-IXP LAN address counter
    ixp_lan_counter: Vec<u32>,
    /// (AS, IXP) → that AS's LAN interface & router (assigned on first use)
    ixp_iface: HashMap<(AsIdx, IxpId), (RouterId, Ipv4)>,
    adjacencies: Vec<Adjacency>,
    points: Vec<PeeringPoint>,
    intra: HashMap<(AsIdx, CityId, CityId), Vec<Vec<Ipv4>>>,
    originated: Vec<Vec<Prefix>>,
    registry: Registry,
    strips: Vec<bool>,
}

impl<'c> Gen<'c> {
    fn new(cfg: &'c TopologyConfig) -> Self {
        Gen {
            cfg,
            tiers: Vec::new(),
            cities: Vec::new(),
            edges: Vec::new(),
            edge_set: HashSet::new(),
            ixps: Vec::new(),
            routers: Vec::new(),
            city_router: HashMap::new(),
            iface_counter: vec![0; cfg.num_ases],
            link_counter: vec![0; cfg.num_ases],
            ixp_lan_counter: Vec::new(),
            ixp_iface: HashMap::new(),
            adjacencies: Vec::new(),
            points: Vec::new(),
            intra: HashMap::new(),
            originated: vec![Vec::new(); cfg.num_ases],
            registry: Registry::default(),
            strips: Vec::new(),
        }
    }

    fn block(&self, a: AsIdx) -> u32 {
        plan::AS_BASE + (a.0 << 16)
    }

    fn assign_tiers_and_cities(&mut self, rng: &mut StdRng) {
        let n = self.cfg.num_ases;
        let n_t1 = self.cfg.num_tier1;
        let n_transit = ((n - n_t1) as f64 * self.cfg.frac_transit).round() as usize;
        let n_regional = ((n - n_t1) as f64 * self.cfg.frac_regional).round() as usize;
        for i in 0..n {
            let tier = if i < n_t1 {
                Tier::Tier1
            } else if i < n_t1 + n_transit {
                Tier::Transit
            } else if i < n_t1 + n_transit + n_regional {
                Tier::Regional
            } else {
                Tier::Stub
            };
            self.tiers.push(tier);
            let all: Vec<CityId> = (0..self.cfg.num_cities as u16).map(CityId).collect();
            let count = match tier {
                Tier::Tier1 => (self.cfg.num_cities * 7 / 10).max(2),
                Tier::Transit => {
                    rng.gen_range(6..=12.min(self.cfg.num_cities)).min(self.cfg.num_cities)
                }
                Tier::Regional => rng.gen_range(2..=5).min(self.cfg.num_cities),
                Tier::Stub => rng.gen_range(1..=2).min(self.cfg.num_cities),
            };
            let mut footprint: Vec<CityId> = all.choose_multiple(rng, count).copied().collect();
            footprint.sort_unstable();
            self.cities.push(footprint);
            self.strips.push(rng.gen_bool(self.cfg.strip_communities_frac));
        }
    }

    fn add_edge(
        &mut self,
        a: AsIdx,
        b: AsIdx,
        rel_b: Relationship,
        ixp: Option<IxpId>,
        latent: bool,
    ) -> bool {
        if a == b || self.edge_set.contains(&(a, b)) || self.edge_set.contains(&(b, a)) {
            return false;
        }
        self.edge_set.insert((a, b));
        self.edges.push((a, b, rel_b, ixp, latent));
        true
    }

    fn shares_city(&self, a: AsIdx, b: AsIdx) -> bool {
        self.cities[a.index()].iter().any(|c| self.cities[b.index()].contains(c))
    }

    /// Ensures two ASes share at least one city, extending the customer's
    /// footprint if needed (models remote peering / backhaul to the
    /// provider's PoP).
    fn ensure_shared_city(&mut self, provider: AsIdx, customer: AsIdx, rng: &mut StdRng) {
        if self.shares_city(provider, customer) {
            return;
        }
        let pc = &self.cities[provider.index()];
        let c = *pc.choose(rng).expect("provider has at least one city");
        let fp = &mut self.cities[customer.index()];
        fp.push(c);
        fp.sort_unstable();
        fp.dedup();
    }

    fn build_edges(&mut self, rng: &mut StdRng) {
        let n = self.cfg.num_ases;
        // Tier-1 clique.
        for i in 0..self.cfg.num_tier1 {
            for j in (i + 1)..self.cfg.num_tier1 {
                self.add_edge(AsIdx(i as u32), AsIdx(j as u32), Relationship::Peer, None, false);
            }
        }
        // Transit providers: customers of 2 tier-1s, peers among themselves
        // when co-located.
        let by_tier = |t: Tier, tiers: &[Tier]| -> Vec<AsIdx> {
            tiers
                .iter()
                .enumerate()
                .filter(|(_, x)| **x == t)
                .map(|(i, _)| AsIdx(i as u32))
                .collect()
        };
        let t1 = by_tier(Tier::Tier1, &self.tiers);
        let transit = by_tier(Tier::Transit, &self.tiers);
        let regional = by_tier(Tier::Regional, &self.tiers);
        let stubs = by_tier(Tier::Stub, &self.tiers);

        for &t in &transit {
            let provs: Vec<AsIdx> = t1.choose_multiple(rng, 2).copied().collect();
            for p in provs {
                self.ensure_shared_city(p, t, rng);
                self.add_edge(p, t, Relationship::Customer, None, false);
            }
        }
        for (i, &a) in transit.iter().enumerate() {
            for &b in &transit[i + 1..] {
                if self.shares_city(a, b) && rng.gen_bool(0.4) {
                    self.add_edge(a, b, Relationship::Peer, None, false);
                }
            }
        }
        // Regionals: customers of 1-3 transits (co-located preferred).
        for &r in &regional {
            let mut cands: Vec<AsIdx> =
                transit.iter().copied().filter(|&t| self.shares_city(t, r)).collect();
            if cands.is_empty() {
                cands = transit.clone();
            }
            if cands.is_empty() {
                cands = t1.clone();
            }
            cands.shuffle(rng);
            let k = rng.gen_range(1..=3.min(cands.len()));
            for &p in cands.iter().take(k) {
                self.ensure_shared_city(p, r, rng);
                self.add_edge(p, r, Relationship::Customer, None, false);
            }
            // occasional direct tier-1 transit
            if rng.gen_bool(0.1) {
                if let Some(&p) = t1.choose(rng) {
                    self.ensure_shared_city(p, r, rng);
                    self.add_edge(p, r, Relationship::Customer, None, false);
                }
            }
        }
        // Stubs: customers of 1-3 regionals/transits, co-located preferred.
        let upstream: Vec<AsIdx> = regional.iter().chain(transit.iter()).copied().collect();
        for &s in &stubs {
            let mut cands: Vec<AsIdx> =
                upstream.iter().copied().filter(|&u| self.shares_city(u, s)).collect();
            if cands.is_empty() {
                cands = upstream.clone();
            }
            cands.shuffle(rng);
            let k = rng.gen_range(1..=3.min(cands.len()));
            for &p in cands.iter().take(k) {
                self.ensure_shared_city(p, s, rng);
                self.add_edge(p, s, Relationship::Customer, None, false);
            }
        }
        let _ = n;
    }

    fn build_ixps(&mut self, rng: &mut StdRng) {
        // Place IXPs in the busiest cities (by AS presence).
        let mut presence = vec![0usize; self.cfg.num_cities];
        for fp in &self.cities {
            for c in fp {
                presence[c.0 as usize] += 1;
            }
        }
        let mut order: Vec<usize> = (0..self.cfg.num_cities).collect();
        order.sort_by_key(|&c| std::cmp::Reverse(presence[c]));

        for i in 0..self.cfg.num_ixps {
            let city = CityId(order[i % order.len()] as u16);
            let lan = Prefix::new(Ipv4(plan::IXP_BASE + ((i as u32) << 12)), 20);
            let asn = Asn(59_000 + i as u32);
            // Members: ASes present at the city join tier-dependently.
            let mut members = Vec::new();
            for (a, fp) in self.cities.iter().enumerate() {
                if !fp.contains(&city) {
                    continue;
                }
                let p = match self.tiers[a] {
                    Tier::Tier1 => 0.8,
                    Tier::Transit => 0.7,
                    Tier::Regional => 0.5,
                    Tier::Stub => 0.25,
                };
                if rng.gen_bool(p) {
                    members.push(AsIdx(a as u32));
                }
            }
            self.ixps.push(Ixp { id: IxpId(i as u16), asn, city, lan, members });
            self.ixp_lan_counter.push(0);
            self.registry.route_server_asns.push(asn);
        }

        // Peering edges over IXPs between members; also create the latent
        // memberships + latent peerings used by IXP-join events.
        for i in 0..self.ixps.len() {
            let ixp_id = IxpId(i as u16);
            let members = self.ixps[i].members.clone();
            for (mi, &a) in members.iter().enumerate() {
                for &b in &members[mi + 1..] {
                    // avoid peering a provider with its own customer
                    if self.edge_set.contains(&(a, b)) || self.edge_set.contains(&(b, a)) {
                        continue;
                    }
                    let p = match (self.tiers[a.index()], self.tiers[b.index()]) {
                        (Tier::Stub, Tier::Stub) => 0.25,
                        (Tier::Tier1, Tier::Tier1) => 0.0, // already clique
                        _ => 0.35,
                    };
                    if rng.gen_bool(p) {
                        self.add_edge(a, b, Relationship::Peer, Some(ixp_id), false);
                    }
                }
            }
            // Latent members: present in the city but not a member yet.
            let city = self.ixps[i].city;
            let mut latents: Vec<AsIdx> = (0..self.cfg.num_ases)
                .map(|x| AsIdx(x as u32))
                .filter(|x| self.cities[x.index()].contains(&city) && !members.contains(x))
                .collect();
            latents.shuffle(rng);
            latents.truncate(self.cfg.latent_ixp_members);
            for l in latents {
                let mut peers: Vec<AsIdx> = members
                    .iter()
                    .copied()
                    .filter(|&m| {
                        !self.edge_set.contains(&(l, m)) && !self.edge_set.contains(&(m, l))
                    })
                    .collect();
                peers.shuffle(rng);
                let k = (peers.len() / 2).max(1).min(peers.len());
                for &m in peers.iter().take(k) {
                    self.add_edge(l, m, Relationship::Peer, Some(ixp_id), true);
                }
            }
        }
    }

    fn create_routers(&mut self, rng: &mut StdRng) {
        for (a, fp) in self.cities.iter().enumerate() {
            for &c in fp {
                let id = RouterId(self.routers.len() as u32);
                let k = self.iface_counter[a];
                self.iface_counter[a] += 1;
                let iface = Ipv4(self.block(AsIdx(a as u32)) + plan::ROUTER_IFACE_OFF + k);
                self.routers.push(Router {
                    id,
                    owner: AsIdx(a as u32),
                    city: c,
                    internal_iface: iface,
                    ifaces: vec![iface],
                    responsive: !rng.gen_bool(self.cfg.unresponsive_router_frac),
                    is_city_router: true,
                });
                self.city_router.insert((AsIdx(a as u32), c), id);
            }
        }
    }

    /// The LAN interface of an AS at an IXP, creating it on first use. All
    /// of the AS's sessions at the IXP share this interface — this is what
    /// makes one border IP serve many AS pairs (Figure 14).
    fn ixp_iface_for(&mut self, a: AsIdx, ixp: IxpId) -> (RouterId, Ipv4) {
        if let Some(&v) = self.ixp_iface.get(&(a, ixp)) {
            return v;
        }
        let city = self.ixps[ixp.index()].city;
        let router = *self
            .city_router
            .get(&(a, city))
            .expect("IXP member must have a router in the IXP city");
        let n = self.ixp_lan_counter[ixp.index()];
        self.ixp_lan_counter[ixp.index()] = n + 1;
        let ip = Ipv4(self.ixps[ixp.index()].lan.network().value() + 1 + n);
        self.routers[router.index()].ifaces.push(ip);
        self.ixp_iface.insert((a, ixp), (router, ip));
        (router, ip)
    }

    fn create_points(&mut self, rng: &mut StdRng) {
        let edges = self.edges.clone();
        for (a, b, rel_b, ixp, latent) in edges {
            let adj_id = AdjacencyId(self.adjacencies.len() as u32);
            let mut point_ids = Vec::new();

            if let Some(ixp_id) = ixp {
                // Single point over the IXP LAN.
                let (ar, aip) = self.ixp_iface_for(a, ixp_id);
                let (br, bip) = self.ixp_iface_for(b, ixp_id);
                let pid = PeeringPointId(self.points.len() as u32);
                self.points.push(PeeringPoint {
                    id: pid,
                    adj: adj_id,
                    city: self.ixps[ixp_id.index()].city,
                    ixp: Some(ixp_id),
                    route_server: rng.gen_bool(self.cfg.route_server_frac),
                    a_router: ar,
                    b_router: br,
                    a_iface: aip,
                    b_iface: bip,
                    bias_a: rng.gen_range(0..50),
                    bias_b: rng.gen_range(0..50),
                });
                point_ids.push(pid);
            } else {
                // Private interconnects in common cities.
                let mut common: Vec<CityId> = self.cities[a.index()]
                    .iter()
                    .copied()
                    .filter(|c| self.cities[b.index()].contains(c))
                    .collect();
                common.shuffle(rng);
                let mut n_points = 1;
                while n_points < self.cfg.max_points
                    && n_points < common.len()
                    && rng.gen_bool(self.cfg.multi_point_prob)
                {
                    n_points += 1;
                }
                for &city in common.iter().take(n_points.max(1).min(common.len().max(1))) {
                    let ar = self.city_router[&(a, city)];
                    let br = self.city_router[&(b, city)];
                    // Link subnet from a's space (a is the provider for
                    // transit edges by construction order, or the lower
                    // index for peers).
                    let j = self.link_counter[a.index()];
                    self.link_counter[a.index()] += 1;
                    assert!(
                        plan::LINK_SUBNET_OFF + 2 * j + 1 < plan::HOST_OFF,
                        "link subnet space exhausted for AS index {}",
                        a.0
                    );
                    let base = self.block(a) + plan::LINK_SUBNET_OFF + 2 * j;
                    let aip = Ipv4(base);
                    let bip = Ipv4(base + 1);
                    self.routers[ar.index()].ifaces.push(aip);
                    self.routers[br.index()].ifaces.push(bip);
                    let pid = PeeringPointId(self.points.len() as u32);
                    self.points.push(PeeringPoint {
                        id: pid,
                        adj: adj_id,
                        city,
                        ixp: None,
                        route_server: false,
                        a_router: ar,
                        b_router: br,
                        a_iface: aip,
                        b_iface: bip,
                        bias_a: rng.gen_range(0..50),
                        bias_b: rng.gen_range(0..50),
                    });
                    point_ids.push(pid);
                }
            }

            let ecmp = point_ids.len() > 1 && rng.gen_bool(self.cfg.ecmp_adjacency_frac);
            self.adjacencies.push(Adjacency {
                id: adj_id,
                a,
                b,
                rel_b,
                points: point_ids,
                ecmp,
                latent,
            });
        }
    }

    fn create_intra_diamonds(&mut self, rng: &mut StdRng) {
        for a in 0..self.cfg.num_ases {
            let fp = self.cities[a].clone();
            if fp.len() < 2 {
                continue;
            }
            for &c1 in &fp {
                for &c2 in &fp {
                    if c1 == c2 || !rng.gen_bool(self.cfg.intra_diamond_frac) {
                        continue;
                    }
                    let branches = rng.gen_range(2..=3);
                    let mut set = Vec::new();
                    for _ in 0..branches {
                        // one mid router per branch, placed at c1
                        let id = RouterId(self.routers.len() as u32);
                        let k = self.iface_counter[a];
                        self.iface_counter[a] += 1;
                        assert!(
                            plan::ROUTER_IFACE_OFF + k < plan::LINK_SUBNET_OFF,
                            "router iface space exhausted for AS index {a}"
                        );
                        let iface = Ipv4(self.block(AsIdx(a as u32)) + plan::ROUTER_IFACE_OFF + k);
                        self.routers.push(Router {
                            id,
                            owner: AsIdx(a as u32),
                            city: c1,
                            internal_iface: iface,
                            ifaces: vec![iface],
                            responsive: !rng.gen_bool(self.cfg.unresponsive_router_frac),
                            is_city_router: false,
                        });
                        set.push(vec![iface]);
                    }
                    self.intra.insert((AsIdx(a as u32), c1, c2), set);
                }
            }
        }
    }

    fn originate_prefixes(&mut self, rng: &mut StdRng) {
        for a in 0..self.cfg.num_ases {
            let base = self.block(AsIdx(a as u32));
            // Every AS originates its covering /16.
            self.originated[a].push(Prefix::new(Ipv4(base), 16));
            // Stubs and regionals originate extra specifics in the low half.
            let extra = match self.tiers[a] {
                Tier::Stub | Tier::Regional => rng.gen_range(0..=self.cfg.max_extra_prefixes),
                _ => 0,
            };
            for e in 0..extra {
                let len = *[20u8, 22, 24].choose(rng).expect("non-empty");
                let span = 1u32 << (32 - len);
                // Carve from the low half (destination space) without overlap
                // by striding: slot e gets offset e * span within 0..0x8000.
                let off = (e as u32) * span;
                if off + span > 0x8000 {
                    break;
                }
                self.originated[a].push(Prefix::new(Ipv4(base + off), len));
            }
        }
    }

    fn build_registry(&mut self, rng: &mut StdRng) {
        // Facilities: 1-3 per city.
        let mut city_facs: Vec<Vec<FacilityId>> = Vec::new();
        for c in 0..self.cfg.num_cities {
            let k = rng.gen_range(1..=3);
            let mut ids = Vec::new();
            for f in 0..k {
                let id = FacilityId(self.registry.facilities.len() as u16);
                self.registry.facilities.push(Facility {
                    id,
                    city: CityId(c as u16),
                    name: format!("{}-fac{}", crate::city::CITY_TABLE[c].name, f),
                });
                ids.push(id);
            }
            city_facs.push(ids);
        }
        // AS presence: register at one facility per city, with omissions.
        for a in 0..self.cfg.num_ases {
            let mut facs = Vec::new();
            for &c in &self.cities[a] {
                if rng.gen_bool(self.cfg.registry_omission_frac) {
                    continue;
                }
                let f = *city_facs[c.0 as usize].choose(rng).expect("non-empty");
                facs.push(f);
            }
            self.registry.as_facilities.insert(AsIdx(a as u32), facs);
        }
        // IXP membership (initial members only, with omissions).
        for ixp in &self.ixps {
            let mut set = HashSet::new();
            for &m in &ixp.members {
                if !rng.gen_bool(self.cfg.registry_omission_frac) {
                    set.insert(m);
                }
            }
            self.registry.ixp_members.insert(ixp.id, set);
            self.registry.ixp_lans.insert(ixp.id, ixp.lan);
        }
        // Relationship database: ground truth for non-latent edges.
        for &(a, b, rel_b, _, latent) in &self.edges {
            if latent {
                continue;
            }
            match rel_b {
                Relationship::Customer => {
                    self.registry.p2c_pairs.insert((a, b));
                }
                Relationship::Provider => {
                    self.registry.p2c_pairs.insert((b, a));
                }
                Relationship::Peer => {
                    self.registry.peer_pairs.insert((a, b));
                }
            }
        }
    }

    fn finish(self) -> Topology {
        let mut ases = Vec::with_capacity(self.cfg.num_ases);
        let mut asn_index = HashMap::new();
        for a in 0..self.cfg.num_ases {
            let asn = Asn(100 + a as u32);
            asn_index.insert(asn, AsIdx(a as u32));
            ases.push(AsInfo {
                asn,
                tier: self.tiers[a],
                cities: self.cities[a].clone(),
                block: Prefix::new(Ipv4(plan::AS_BASE + ((a as u32) << 16)), 16),
                originated: self.originated[a].clone(),
                neighbors: Vec::new(),
                strips_communities: self.strips[a],
                hub_city: self.cities[a][0],
            });
        }
        // Neighbor lists from adjacencies.
        for adj in &self.adjacencies {
            ases[adj.a.index()].neighbors.push(NeighborRef {
                peer: adj.b,
                adj: adj.id,
                rel: adj.rel_b,
            });
            ases[adj.b.index()].neighbors.push(NeighborRef {
                peer: adj.a,
                adj: adj.id,
                rel: adj.rel_b.inverse(),
            });
        }
        let mut iface_owner = HashMap::new();
        for r in &self.routers {
            for &ip in &r.ifaces {
                iface_owner.insert(ip, r.id);
            }
        }
        let mut topo = Topology {
            ases,
            adjacencies: self.adjacencies,
            points: self.points,
            routers: self.routers,
            ixps: self.ixps,
            num_cities: self.cfg.num_cities,
            asn_index,
            iface_owner,
            intra: self.intra,
            registry: self.registry,
            city_router_index: HashMap::new(),
        };
        topo.build_city_router_index();
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::IpOwner;

    fn small() -> Topology {
        generate(&TopologyConfig::small(42))
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.num_ases(), b.num_ases());
        assert_eq!(a.adjacencies.len(), b.adjacencies.len());
        assert_eq!(a.points.len(), b.points.len());
        for (x, y) in a.points.iter().zip(b.points.iter()) {
            assert_eq!(x.a_iface, y.a_iface);
            assert_eq!(x.b_iface, y.b_iface);
        }
    }

    #[test]
    fn structure_sane() {
        let t = small();
        assert_eq!(t.num_ases(), 60);
        assert!(!t.adjacencies.is_empty());
        assert!(!t.points.is_empty());
        assert!(t.ixps.len() == 3);
        // Every non-tier1 AS has at least one provider (connectivity).
        for (i, a) in t.ases.iter().enumerate() {
            if a.tier != Tier::Tier1 {
                assert!(
                    a.neighbors.iter().any(|n| n.rel == Relationship::Provider),
                    "AS idx {i} ({:?}) has no provider",
                    a.tier
                );
            }
            assert!(!a.cities.is_empty());
            assert!(a.cities.contains(&a.hub_city));
        }
    }

    #[test]
    fn no_provider_cycles() {
        // Tiers enforce a DAG: provider tier index must be <= customer's.
        let t = small();
        let rank = |x: Tier| match x {
            Tier::Tier1 => 0,
            Tier::Transit => 1,
            Tier::Regional => 2,
            Tier::Stub => 3,
        };
        for adj in &t.adjacencies {
            if adj.rel_b == Relationship::Customer {
                assert!(
                    rank(t.as_info(adj.a).tier) <= rank(t.as_info(adj.b).tier),
                    "provider {:?} below customer {:?}",
                    t.as_info(adj.a).tier,
                    t.as_info(adj.b).tier
                );
            }
        }
    }

    #[test]
    fn address_plan_consistent() {
        let t = small();
        for (i, a) in t.ases.iter().enumerate() {
            assert_eq!(t.owner_of_ip(a.block.network()), IpOwner::As(AsIdx(i as u32)));
            for p in &a.originated {
                assert!(a.block.covers(*p), "{p} outside block {}", a.block);
                assert!(!p.more_specific_than_24());
            }
        }
        for ixp in &t.ixps {
            assert_eq!(t.owner_of_ip(ixp.lan.network()), IpOwner::Ixp(ixp.id));
        }
        // Interface ownership maps back to routers.
        for r in &t.routers {
            for &ip in &r.ifaces {
                assert_eq!(t.router_of_iface(ip), Some(r.id));
            }
        }
    }

    #[test]
    fn points_reference_real_routers_in_city() {
        let t = small();
        for p in &t.points {
            let adj = t.adjacency(p.adj);
            assert_eq!(t.router(p.a_router).owner, adj.a);
            assert_eq!(t.router(p.b_router).owner, adj.b);
            assert_eq!(t.router(p.a_router).city, p.city);
            assert_eq!(t.router(p.b_router).city, p.city);
            if let Some(ixp) = p.ixp {
                assert_eq!(t.ixp(ixp).city, p.city);
                assert!(t.ixp(ixp).lan.contains(p.a_iface));
                assert!(t.ixp(ixp).lan.contains(p.b_iface));
            }
        }
    }

    #[test]
    fn ixp_ifaces_shared_across_adjacencies() {
        // The same (AS, IXP) interface must appear for every session that AS
        // has at the IXP — the Figure 14 sharing property.
        let t = small();
        let mut by_as_ixp: HashMap<(AsIdx, IxpId), HashSet<Ipv4>> = HashMap::new();
        for p in &t.points {
            if let Some(ixp) = p.ixp {
                let adj = t.adjacency(p.adj);
                by_as_ixp.entry((adj.a, ixp)).or_default().insert(p.a_iface);
                by_as_ixp.entry((adj.b, ixp)).or_default().insert(p.b_iface);
            }
        }
        for ((a, ixp), set) in by_as_ixp {
            assert_eq!(set.len(), 1, "{a:?} has {} LAN addrs at {ixp}", set.len());
        }
    }

    #[test]
    fn latent_adjacencies_exist_and_are_ixp_peerings() {
        let t = small();
        let latents: Vec<_> = t.adjacencies.iter().filter(|a| a.latent).collect();
        assert!(!latents.is_empty(), "config requested latent members");
        for adj in latents {
            assert_eq!(adj.rel_b, Relationship::Peer);
            assert!(t.point(adj.points[0]).ixp.is_some());
            // Latent members are not in the initial IXP member list.
            let ixp = t.point(adj.points[0]).ixp.expect("checked above");
            let members = &t.ixp(ixp).members;
            assert!(
                !members.contains(&adj.a) || !members.contains(&adj.b),
                "latent adjacency between two initial members"
            );
        }
    }

    #[test]
    fn diamonds_generated() {
        let t = small();
        assert!(t.intra.values().any(|b| b.len() >= 2), "expected intradomain diamonds");
        assert!(
            t.adjacencies.iter().any(|a| a.ecmp),
            "expected at least one interdomain ECMP adjacency"
        );
        // Branch routers exist and are distinct per diamond.
        for branches in t.intra.values() {
            let mut seen = HashSet::new();
            for b in branches {
                for ip in b {
                    assert!(seen.insert(*ip), "shared mid router across branches");
                    assert!(t.router_of_iface(*ip).is_some());
                }
            }
        }
    }

    #[test]
    fn registry_has_omissions_but_sane() {
        let t = small();
        // Every documented member is a true member.
        for (ixp, doc) in &t.registry.ixp_members {
            for m in doc {
                assert!(t.ixp(*ixp).members.contains(m));
            }
        }
        // Route server ASNs cover all IXPs.
        assert_eq!(t.registry.route_server_asns.len(), t.ixps.len());
    }

    #[test]
    fn evaluation_scale_generates() {
        let t = generate(&TopologyConfig::evaluation(7));
        assert_eq!(t.num_ases(), 400);
        // A generous majority of ASes must be multi-homed or peered.
        let multi = t.ases.iter().filter(|a| a.neighbors.len() >= 2).count();
        assert!(multi * 2 > t.num_ases(), "graph too sparse: {multi}");
        // Multi-point adjacencies exist (the substrate for border-level
        // changes without AS-path changes).
        assert!(t.adjacencies.iter().any(|a| a.points.len() >= 2));
    }
}
