//! Generator configuration.

use serde::{Deserialize, Serialize};

/// Parameters controlling topology generation. All randomness is driven by
/// `seed`, so equal configs generate identical topologies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologyConfig {
    pub seed: u64,
    /// Total number of ASes (≤ 1024 under the address plan).
    pub num_ases: usize,
    /// Size of the tier-1 clique.
    pub num_tier1: usize,
    /// Fraction of non-tier-1 ASes that are large transit providers.
    pub frac_transit: f64,
    /// Fraction of non-tier-1 ASes that are regional providers.
    pub frac_regional: f64,
    /// Number of cities (prefix of the city table).
    pub num_cities: usize,
    /// Number of IXPs.
    pub num_ixps: usize,
    /// Probability that an adjacency has more than one peering point
    /// (additional points added geometrically up to `max_points`).
    pub multi_point_prob: f64,
    /// Maximum peering points per adjacency.
    pub max_points: usize,
    /// Fraction of multi-point adjacencies that ECMP across their points
    /// (interdomain diamonds, §5.4).
    pub ecmp_adjacency_frac: f64,
    /// Fraction of ordered intra-AS city pairs given parallel internal
    /// branches (intradomain diamonds).
    pub intra_diamond_frac: f64,
    /// Fraction of ASes that strip BGP communities on export.
    pub strip_communities_frac: f64,
    /// Fraction of routers that never respond to traceroute probes.
    pub unresponsive_router_frac: f64,
    /// Fraction of true facts (IXP membership, facility presence) missing
    /// from the registry.
    pub registry_omission_frac: f64,
    /// Probability an IXP peering session goes through the route server.
    pub route_server_frac: f64,
    /// Extra more-specific prefixes originated per stub/regional AS.
    pub max_extra_prefixes: usize,
    /// Number of latent (initially inactive) IXP memberships per IXP, used
    /// to drive IXP-join events (§4.2.3).
    pub latent_ixp_members: usize,
}

impl TopologyConfig {
    /// A small deterministic topology for unit tests: fast to generate and
    /// route, but still exhibiting every structural feature (multi-point
    /// adjacencies, IXPs, diamonds, latent members).
    pub fn small(seed: u64) -> Self {
        TopologyConfig {
            seed,
            num_ases: 60,
            num_tier1: 4,
            frac_transit: 0.15,
            frac_regional: 0.25,
            num_cities: 12,
            num_ixps: 3,
            multi_point_prob: 0.45,
            max_points: 3,
            ecmp_adjacency_frac: 0.1,
            intra_diamond_frac: 0.15,
            strip_communities_frac: 0.35,
            unresponsive_router_frac: 0.05,
            registry_omission_frac: 0.1,
            route_server_frac: 0.5,
            max_extra_prefixes: 2,
            latent_ixp_members: 2,
        }
    }

    /// The evaluation-scale topology used by the experiment harness.
    pub fn evaluation(seed: u64) -> Self {
        TopologyConfig {
            seed,
            num_ases: 400,
            num_tier1: 7,
            frac_transit: 0.10,
            frac_regional: 0.22,
            num_cities: 40,
            num_ixps: 10,
            multi_point_prob: 0.5,
            max_points: 4,
            ecmp_adjacency_frac: 0.08,
            intra_diamond_frac: 0.12,
            strip_communities_frac: 0.4,
            unresponsive_router_frac: 0.04,
            registry_omission_frac: 0.12,
            route_server_frac: 0.5,
            max_extra_prefixes: 3,
            latent_ixp_members: 4,
        }
    }
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig::evaluation(1)
    }
}
