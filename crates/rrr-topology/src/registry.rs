//! A PeeringDB-like registry: the *publicly documented* view of facilities,
//! AS presence, and IXP membership.
//!
//! Deliberately imperfect — a configurable fraction of IXP memberships and
//! facility presences are omitted, so inference code (IXP membership
//! tracking §4.2.3, shortest-ping geolocation Appendix A) must cope with
//! missing entries exactly as it would against the real PeeringDB.

use crate::model::AsIdx;
use rrr_types::{Asn, CityId, FacilityId, IxpId, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A colocation facility.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Facility {
    pub id: FacilityId,
    pub city: CityId,
    pub name: String,
}

/// Registry contents.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    pub facilities: Vec<Facility>,
    /// Facilities each AS is documented to be present at.
    pub as_facilities: HashMap<AsIdx, Vec<FacilityId>>,
    /// Documented IXP membership (may omit real members).
    pub ixp_members: HashMap<IxpId, HashSet<AsIdx>>,
    /// IXP LAN prefixes (documented completely; these are easy to find in
    /// practice).
    pub ixp_lans: HashMap<IxpId, Prefix>,
    /// ASNs documented as IXP route servers (PeeringDB "Route Server" type,
    /// §4.1.1 strips these from AS paths).
    pub route_server_asns: Vec<Asn>,
    /// CAIDA-style AS relationship database: (a, b) → `true` when `a` is a
    /// provider of `b`. Peers are stored as absence plus presence in
    /// `peer_pairs`.
    pub p2c_pairs: HashSet<(AsIdx, AsIdx)>,
    pub peer_pairs: HashSet<(AsIdx, AsIdx)>,
}

impl Registry {
    /// Facilities of an AS in a given city (documented view).
    pub fn facilities_of_in(&self, asx: AsIdx, city: CityId) -> Vec<FacilityId> {
        self.as_facilities
            .get(&asx)
            .map(|fs| {
                fs.iter().filter(|f| self.facilities[f.index()].city == city).copied().collect()
            })
            .unwrap_or_default()
    }

    /// All cities an AS is documented to have a facility in.
    pub fn cities_of(&self, asx: AsIdx) -> Vec<CityId> {
        let mut cities: Vec<CityId> = self
            .as_facilities
            .get(&asx)
            .map(|fs| fs.iter().map(|f| self.facilities[f.index()].city).collect())
            .unwrap_or_default();
        cities.sort_unstable();
        cities.dedup();
        cities
    }

    /// Documented membership check.
    pub fn is_ixp_member(&self, ixp: IxpId, asx: AsIdx) -> bool {
        self.ixp_members.get(&ixp).is_some_and(|m| m.contains(&asx))
    }

    /// CAIDA-relationship lookup: relationship of `b` relative to `a`
    /// (`Some(Customer)` when b is a's customer), mirroring
    /// [`crate::Relationship`] semantics. `None` when not adjacent per the
    /// database.
    pub fn db_rel(&self, a: AsIdx, b: AsIdx) -> Option<crate::Relationship> {
        if self.p2c_pairs.contains(&(a, b)) {
            Some(crate::Relationship::Customer)
        } else if self.p2c_pairs.contains(&(b, a)) {
            Some(crate::Relationship::Provider)
        } else if self.peer_pairs.contains(&(a, b)) || self.peer_pairs.contains(&(b, a)) {
            Some(crate::Relationship::Peer)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Relationship;

    #[test]
    fn rel_db_orientation() {
        let mut r = Registry::default();
        r.p2c_pairs.insert((AsIdx(0), AsIdx(1))); // 1 is 0's customer
        r.peer_pairs.insert((AsIdx(2), AsIdx(3)));
        assert_eq!(r.db_rel(AsIdx(0), AsIdx(1)), Some(Relationship::Customer));
        assert_eq!(r.db_rel(AsIdx(1), AsIdx(0)), Some(Relationship::Provider));
        assert_eq!(r.db_rel(AsIdx(2), AsIdx(3)), Some(Relationship::Peer));
        assert_eq!(r.db_rel(AsIdx(3), AsIdx(2)), Some(Relationship::Peer));
        assert_eq!(r.db_rel(AsIdx(0), AsIdx(3)), None);
    }

    #[test]
    fn facility_queries() {
        let mut r = Registry::default();
        r.facilities.push(Facility { id: FacilityId(0), city: CityId(1), name: "fra-1".into() });
        r.facilities.push(Facility { id: FacilityId(1), city: CityId(0), name: "lon-1".into() });
        r.as_facilities.insert(AsIdx(7), vec![FacilityId(0), FacilityId(1)]);
        assert_eq!(r.facilities_of_in(AsIdx(7), CityId(1)), vec![FacilityId(0)]);
        assert!(r.facilities_of_in(AsIdx(9), CityId(1)).is_empty());
        assert_eq!(r.cities_of(AsIdx(7)), vec![CityId(0), CityId(1)]);
    }
}
