//! Lazily materialized large-scale AS world.
//!
//! The eager generator ([`crate::gen::generate`]) builds every router,
//! peering point, and prefix up front, which caps it at
//! `plan::MAX_ASES` (1024) ASes. Soak evaluation wants worlds two orders
//! of magnitude bigger — ~100k ASes, ~1M prefixes — where only a few
//! hundred prefixes are ever touched by a run. [`LazyTopology`] serves
//! that case: the whole world is *defined* by pure seed-keyed hash
//! derivation, and the only state is a materialize-on-first-touch cache
//! of the provider chains a run actually walks.
//!
//! # Derived structure
//!
//! - ASes are indices `0..num_ases`. The first [`LazyConfig::core`]
//!   indices form a fully meshed tier-1 core; every other AS `a` buys
//!   transit from a hash-chosen provider in `[0, a)`, giving a random
//!   recursive DAG whose expected chain depth is `ln(num_ases)` (~11–12
//!   hops at 100k ASes, matching observed Internet path lengths).
//! - Destination prefix `p` (`0..num_prefixes`) is the /24 at
//!   `0x3000_0000 + (p << 8)`, originated by a hash-chosen AS.
//! - Every AS owns an infrastructure /24 at `0x6000_0000 + (idx << 8)`
//!   for router interface addresses, disjoint from the destination plan
//!   by construction.
//!
//! Vantage points are stubs homed on core ASes (`vp_asn`,
//! `vp_home_core`), so per-VP AS paths share the destination's provider
//! chain as a common suffix — the shape BGP suffix monitors key on.
//!
//! Path *variants* model routing state without mutating the graph:
//! [`PathVariant::Detour`] re-parents the origin onto its alternate
//! provider (a link failure pushing the chain one sibling over) and
//! [`PathVariant::EgressShift`] moves the chain's core attachment to the
//! neighboring core AS (a hot-potato egress move deep in the path).

use rrr_types::{Asn, Ipv4, Prefix};
use std::collections::HashMap;

/// SplitMix64 finalizer (same constants as `rrr_bgp::envelope::mix64`,
/// duplicated here so the topology crate stays dependency-light).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Base address of the destination-prefix plan (/24 per prefix index).
const DST_BASE: u32 = 0x3000_0000;
/// Base address of the per-AS infrastructure plan (/24 per AS index).
const INFRA_BASE: u32 = 0x6000_0000;
/// ASN offset for derived ASes (clear of the eager generator's plan and
/// the micro world's literals).
const ASN_BASE: u32 = 100_000;
/// ASN offset for vantage-point stub ASes.
const VP_ASN_BASE: u32 = 50_000;

/// Size and seed of a lazily derived world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LazyConfig {
    pub num_ases: u32,
    pub num_prefixes: u32,
    /// Tier-1 clique size; VP home attachments cycle through these.
    pub core: u32,
    pub seed: u64,
}

impl LazyConfig {
    pub fn new(num_ases: u32, num_prefixes: u32, seed: u64) -> Self {
        assert!(num_ases >= 32, "need at least the core plus some stubs");
        assert!(num_ases <= 1 << 20, "address plan caps at 2^20 ASes");
        assert!((1..=1 << 20).contains(&num_prefixes), "plan caps at 2^20 prefixes");
        LazyConfig { num_ases, num_prefixes, core: 16, seed }
    }
}

/// Which routing state a derived AS path reflects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathVariant {
    /// The steady-state chain.
    Steady,
    /// The origin's provider link failed: re-parent onto the alternate
    /// provider (the chain differs from its second element on).
    Detour,
    /// Hot-potato egress moved: the chain attaches to the neighboring
    /// core AS (the change sits mid-path, near the core).
    EgressShift,
}

/// A ~100k-AS world materialized on first touch.
#[derive(Debug)]
pub struct LazyTopology {
    cfg: LazyConfig,
    /// AS index → provider chain up to (and including) its core attachment
    /// `[a, provider(a), ..., core]`, cached on first walk.
    chains: HashMap<u32, Vec<u32>>,
}

impl LazyTopology {
    pub fn new(cfg: LazyConfig) -> Self {
        LazyTopology { cfg, chains: HashMap::new() }
    }

    pub fn config(&self) -> &LazyConfig {
        &self.cfg
    }

    /// How many provider chains have been materialized — the laziness
    /// witness: a soak touching C prefixes stays O(C · ln ASes), not
    /// O(num_ases).
    pub fn materialized_chains(&self) -> usize {
        self.chains.len()
    }

    /// The ASN of derived AS index `idx`.
    pub fn asn(&self, idx: u32) -> Asn {
        debug_assert!(idx < self.cfg.num_ases);
        Asn(ASN_BASE + idx)
    }

    /// The ASN of vantage-point stub `vp`.
    pub fn vp_asn(&self, vp: u32) -> Asn {
        Asn(VP_ASN_BASE + vp)
    }

    /// The core AS index a vantage point homes on.
    pub fn vp_home_core(&self, vp: u32) -> u32 {
        vp % self.cfg.core
    }

    /// The destination /24 of prefix index `p`.
    pub fn dst_prefix(&self, p: u32) -> Prefix {
        debug_assert!(p < self.cfg.num_prefixes);
        Prefix::new(Ipv4(DST_BASE + (p << 8)), 24)
    }

    /// The infrastructure /24 owned by AS index `idx`.
    pub fn infra_prefix(&self, idx: u32) -> Prefix {
        debug_assert!(idx < self.cfg.num_ases);
        Prefix::new(Ipv4(INFRA_BASE + (idx << 8)), 24)
    }

    /// A router interface address inside an AS's infrastructure /24.
    pub fn infra_ip(&self, idx: u32, host: u8) -> Ipv4 {
        Ipv4(INFRA_BASE + (idx << 8) + host as u32)
    }

    /// The AS index originating destination prefix `p` (never a core AS,
    /// so every origin has a provider chain to fail over).
    pub fn origin_of(&self, p: u32) -> u32 {
        let span = self.cfg.num_ases - self.cfg.core;
        self.cfg.core + (mix64(self.cfg.seed ^ 0xD57 ^ p as u64) % span as u64) as u32
    }

    /// `a`'s transit provider (hash-chosen in `[0, a)`; core ASes have
    /// none). `salt` selects among the alternatives an AS multihomes to.
    fn provider(&self, a: u32, salt: u64) -> u32 {
        debug_assert!(a >= self.cfg.core);
        let h = mix64(self.cfg.seed ^ 0xA11 ^ (a as u64) ^ salt.wrapping_mul(0x1_0000_0001));
        (h % a as u64) as u32
    }

    /// The provider chain `[a, provider(a), ..., core_attachment]`,
    /// materialized and cached on first touch.
    pub fn chain(&mut self, a: u32) -> &[u32] {
        if !self.chains.contains_key(&a) {
            let mut chain = vec![a];
            let mut cur = a;
            while cur >= self.cfg.core {
                cur = self.provider(cur, 0);
                chain.push(cur);
            }
            self.chains.insert(a, chain);
        }
        &self.chains[&a]
    }

    /// The AS-path (as raw ASN values, nearest first) vantage point `vp`
    /// observes toward destination prefix `p` under `variant`:
    /// `[vp_asn, home_core, (transit core), chain..reversed..origin]`.
    pub fn as_path(&mut self, vp: u32, p: u32, variant: PathVariant) -> Vec<u32> {
        let origin = self.origin_of(p);
        let mut chain: Vec<u32> = self.chain(origin).to_vec();
        match variant {
            PathVariant::Steady => {}
            PathVariant::Detour if chain.len() >= 3 => {
                // Re-parent the origin onto its alternate provider and
                // re-walk from there (cached per intermediate AS).
                let alt = self.provider(origin, 1);
                let mut rebuilt = vec![origin, alt];
                if alt >= self.cfg.core {
                    rebuilt.extend_from_slice(&self.chain(alt)[1..]);
                }
                chain = rebuilt;
            }
            PathVariant::Detour => {
                // Origin sits directly under the core: the detour climbs
                // through a hash-chosen sibling instead.
                let span = self.cfg.num_ases - self.cfg.core;
                let mut sib = self.cfg.core
                    + (mix64(self.cfg.seed ^ 0xDE7 ^ origin as u64) % span as u64) as u32;
                if sib == origin {
                    sib = self.cfg.core + (sib - self.cfg.core + 1) % span;
                }
                let tail: Vec<u32> = self.chain(sib).to_vec();
                chain = std::iter::once(origin).chain(tail).collect();
            }
            PathVariant::EgressShift => {
                // Attach to the neighboring core AS instead.
                let top = *chain.last().expect("chains are non-empty");
                *chain.last_mut().expect("non-empty") = (top + 1) % self.cfg.core;
            }
        }
        let home = self.vp_home_core(vp);
        let mut path: Vec<u32> = vec![self.vp_asn(vp).0, self.asn(home).0];
        let top = *chain.last().expect("non-empty");
        if top != home {
            path.push(self.asn(top).0);
        }
        // Chain runs origin → core; the AS path wants core → origin after
        // the VP-side hops (skipping the core attachment already pushed).
        for &a in chain.iter().rev().skip(1) {
            path.push(self.asn(a).0);
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> LazyTopology {
        LazyTopology::new(LazyConfig::new(100_000, 1 << 20, 42))
    }

    #[test]
    fn address_plans_are_disjoint_and_stable() {
        let t = world();
        let d = t.dst_prefix(123_456);
        let i = t.infra_prefix(99_999);
        assert_eq!(d.len(), 24);
        assert!(!d.covers(i) && !i.covers(d));
        assert!(d.network().value() < INFRA_BASE);
        assert!(i.contains(t.infra_ip(99_999, 7)));
    }

    #[test]
    fn chains_terminate_in_the_core_and_stay_shallow() {
        let mut t = world();
        for p in [0u32, 77, 512_000, (1 << 20) - 1] {
            let origin = t.origin_of(p);
            let chain = t.chain(origin).to_vec();
            assert_eq!(chain[0], origin);
            assert!(*chain.last().expect("non-empty") < t.config().core);
            assert!(chain.windows(2).all(|w| w[1] < w[0]), "providers strictly descend");
            assert!(chain.len() < 64, "chain depth {} is implausible", chain.len());
        }
    }

    #[test]
    fn materialization_is_lazy_and_deterministic() {
        let mut a = world();
        let mut b = world();
        assert_eq!(a.materialized_chains(), 0);
        let pa = a.as_path(3, 900_001, PathVariant::Steady);
        let pb = b.as_path(3, 900_001, PathVariant::Steady);
        assert_eq!(pa, pb);
        assert!(a.materialized_chains() < 64, "one touch must not materialize the world");
        assert_eq!(pa.first().copied(), Some(a.vp_asn(3).0));
        assert_eq!(pa.last().copied(), Some(a.asn(a.origin_of(900_001)).0));
    }

    #[test]
    fn variants_change_the_path_and_revert() {
        let mut t = world();
        for p in [5u32, 400_000, 1_000_000] {
            let steady = t.as_path(0, p, PathVariant::Steady);
            let detour = t.as_path(0, p, PathVariant::Detour);
            let egress = t.as_path(0, p, PathVariant::EgressShift);
            assert_ne!(steady, detour, "prefix {p}");
            assert_ne!(steady, egress, "prefix {p}");
            assert_eq!(steady, t.as_path(0, p, PathVariant::Steady), "variant is stateless");
            // All variants keep the same origin (staleness is about the
            // route, not the destination).
            assert_eq!(steady.last(), detour.last());
            assert_eq!(steady.last(), egress.last());
        }
    }

    #[test]
    fn vps_share_the_destination_chain_suffix() {
        let mut t = world();
        let a = t.as_path(0, 12_345, PathVariant::Steady);
        let b = t.as_path(5, 12_345, PathVariant::Steady);
        let suffix_len = t.chain(t.origin_of(12_345)).len().min(a.len().min(b.len()));
        assert!(suffix_len >= 1);
        assert_eq!(a[a.len() - 1], b[b.len() - 1], "same origin");
    }
}
