//! Data-plane path derivation.
//!
//! The forwarding walk mirrors real traceroute semantics: each router on the
//! path contributes the interface *facing the previous hop*, so border
//! crossings show the far side's address on the link medium (a private /31
//! from the near AS's space, or the far member's IXP LAN address).

use rrr_bgp::{egress_points, NetState, RouteTable};
use rrr_topology::{AsIdx, IpOwner, Topology};
use rrr_types::{CityId, Ipv4, PeeringPointId, RouterId};

/// One data-plane hop: the router and the interface it would reply from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    pub router: RouterId,
    pub iface: Ipv4,
}

/// A concrete forwarding path for one flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardPath {
    /// Router-level steps from the first hop router to the last router
    /// before the destination host.
    pub steps: Vec<Step>,
    /// AS-level chain (source AS … destination AS).
    pub as_chain: Vec<AsIdx>,
    /// Peering points crossed, in order.
    pub crossings: Vec<PeeringPointId>,
    /// Whether the destination AS was reached.
    pub reached: bool,
}

/// Per-flow deterministic hash used by load balancers.
fn flow_hash(flow: u64, salt: u64) -> u64 {
    let mut z = (flow ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// Computes the forwarding path from a host in (`src_as`, `src_city`) to
/// `dst`, for load-balancing flow id `flow`.
///
/// Returns `None` when `dst` is outside the address plan. An unreachable
/// destination yields a partial path with `reached == false`.
pub fn forward(
    topo: &Topology,
    state: &NetState,
    routes: &RouteTable,
    src_as: AsIdx,
    src_city: CityId,
    dst: Ipv4,
    flow: u64,
) -> Option<ForwardPath> {
    let IpOwner::As(dst_as) = topo.owner_of_ip(dst) else {
        return None;
    };

    let mut steps: Vec<Step> = Vec::new();
    let mut as_chain = vec![src_as];
    let mut crossings = Vec::new();

    // First hop: the source AS's city router where the probe attaches.
    let first = topo.city_router(src_as, src_city).expect("probe city must be in the AS footprint");
    steps.push(Step { router: first, iface: topo.router(first).internal_iface });

    let mut cur_as = src_as;
    let mut cur_city = src_city;

    while cur_as != dst_as {
        let Some(entry) = routes.route(dst_as, cur_as) else {
            return Some(ForwardPath { steps, as_chain, crossings, reached: false });
        };
        let Some(next) = entry.next else {
            return Some(ForwardPath { steps, as_chain, crossings, reached: false });
        };
        let Some(nref) = topo.as_info(cur_as).neighbor(next) else {
            return Some(ForwardPath { steps, as_chain, crossings, reached: false });
        };
        let pts = egress_points(topo, state, cur_as, nref.adj, cur_city);
        if pts.is_empty() {
            return Some(ForwardPath { steps, as_chain, crossings, reached: false });
        }
        let point = pts[flow_hash(flow, nref.adj.index() as u64) as usize % pts.len()];
        let pt = topo.point(point);

        // Intra-AS walk from cur_city to the egress city.
        walk_intra(topo, state, routes, cur_as, cur_city, pt.city, flow, &mut steps);

        // Cross the border: the far side's interface on the link medium.
        let adj = topo.adjacency(pt.adj);
        let (far_router, far_iface) = pt.side(adj.a == next);
        steps.push(Step { router: far_router, iface: far_iface });
        crossings.push(point);
        as_chain.push(next);
        cur_as = next;
        cur_city = pt.city;

        if as_chain.len() > topo.num_ases() {
            return Some(ForwardPath { steps, as_chain, crossings, reached: false });
        }
    }

    // Inside the destination AS, traffic flows to the city hosting `dst`
    // (the AS's hub city hosts anchors and originated space).
    let dst_city = topo.as_info(dst_as).hub_city;
    walk_intra(topo, state, routes, dst_as, cur_city, dst_city, flow, &mut steps);

    Some(ForwardPath { steps, as_chain, crossings, reached: true })
}

/// Walks inside one AS from `from` to `to`, appending mid-router hops (a
/// flow-selected diamond branch) and the destination city router.
#[allow(clippy::too_many_arguments)]
fn walk_intra(
    topo: &Topology,
    _state: &NetState,
    _routes: &RouteTable,
    asx: AsIdx,
    from: CityId,
    to: CityId,
    flow: u64,
    steps: &mut Vec<Step>,
) {
    if from == to {
        return;
    }
    let branches = topo.intra_branches(asx, from, to);
    let idx = flow_hash(flow, (asx.0 as u64) << 32 | (from.0 as u64) << 16 | to.0 as u64) as usize
        % branches.len();
    for &mid in &branches[idx] {
        let router = topo.router_of_iface(mid).expect("mid iface registered");
        steps.push(Step { router, iface: mid });
    }
    let dest_router = topo.city_router(asx, to).expect("egress city is in the AS footprint");
    steps.push(Step { router: dest_router, iface: topo.router(dest_router).internal_iface });
}

/// A flow-independent description of the current path: the AS chain plus,
/// per inter-AS crossing, the full set of points a flow might take (a
/// singleton unless the adjacency ECMPs).
///
/// This is the ground truth used to decide whether a path has *changed*:
/// flow-dependent wandering inside a load-balanced set is not a change,
/// moving to a different set is (§5.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalPath {
    pub as_chain: Vec<AsIdx>,
    /// For each crossing, the sorted set of usable points.
    pub crossings: Vec<Vec<PeeringPointId>>,
    pub reached: bool,
}

impl CanonicalPath {
    /// Border-level equality: same AS chain and same point sets.
    pub fn same_border_path(&self, other: &CanonicalPath) -> bool {
        self == other
    }

    /// AS-level equality.
    pub fn same_as_path(&self, other: &CanonicalPath) -> bool {
        self.as_chain == other.as_chain && self.reached == other.reached
    }
}

/// Computes the canonical (flow-independent) path description.
pub fn canonical_path(
    topo: &Topology,
    state: &NetState,
    routes: &RouteTable,
    src_as: AsIdx,
    src_city: CityId,
    dst: Ipv4,
) -> Option<CanonicalPath> {
    let IpOwner::As(dst_as) = topo.owner_of_ip(dst) else {
        return None;
    };
    let mut as_chain = vec![src_as];
    let mut crossings = Vec::new();
    let mut cur_as = src_as;
    let mut cur_city = src_city;
    while cur_as != dst_as {
        let Some(next) = routes.route(dst_as, cur_as).and_then(|e| e.next) else {
            return Some(CanonicalPath { as_chain, crossings, reached: false });
        };
        let Some(nref) = topo.as_info(cur_as).neighbor(next) else {
            return Some(CanonicalPath { as_chain, crossings, reached: false });
        };
        let pts = egress_points(topo, state, cur_as, nref.adj, cur_city);
        if pts.is_empty() {
            return Some(CanonicalPath { as_chain, crossings, reached: false });
        }
        // For ECMP adjacencies `egress_points` already returns the sorted
        // set; the representative city for the onward walk is the first
        // point's (deterministic).
        cur_city = topo.point(pts[0]).city;
        crossings.push(pts);
        as_chain.push(next);
        cur_as = next;
        if as_chain.len() > topo.num_ases() {
            return Some(CanonicalPath { as_chain, crossings, reached: false });
        }
    }
    Some(CanonicalPath { as_chain, crossings, reached: true })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrr_bgp::compute_routes;
    use rrr_topology::{generate, TopologyConfig};
    use std::collections::HashSet;

    fn setup() -> (rrr_topology::Topology, NetState, RouteTable) {
        let topo = generate(&TopologyConfig::small(11));
        let state = NetState::new(&topo);
        let routes = compute_routes(&topo, &state);
        (topo, state, routes)
    }

    #[test]
    fn forward_reaches_all_destinations() {
        let (topo, state, routes) = setup();
        let src = AsIdx(10);
        let city = topo.as_info(src).hub_city;
        for d in 0..topo.num_ases() {
            let dst = topo.host_addr(AsIdx(d as u32), 5);
            let p = forward(&topo, &state, &routes, src, city, dst, 0).expect("in plan");
            assert!(p.reached, "unreachable dst AS {d}");
            assert_eq!(*p.as_chain.last().expect("non-empty"), AsIdx(d as u32));
            assert_eq!(p.as_chain.len(), p.crossings.len() + 1);
            assert!(!p.steps.is_empty());
        }
    }

    #[test]
    fn hops_follow_crossing_semantics() {
        let (topo, state, routes) = setup();
        let src = AsIdx(10);
        let city = topo.as_info(src).hub_city;
        let dst = topo.host_addr(AsIdx(0), 1);
        let p = forward(&topo, &state, &routes, src, city, dst, 3).expect("path");
        // Every crossing's far-side interface appears in the step list.
        for (i, &cr) in p.crossings.iter().enumerate() {
            let pt = topo.point(cr);
            let far_as = p.as_chain[i + 1];
            let adj = topo.adjacency(pt.adj);
            let (fr, fi) = pt.side(adj.a == far_as);
            assert!(
                p.steps.iter().any(|s| s.router == fr && s.iface == fi),
                "crossing {cr} far side missing from steps"
            );
        }
        // Router owners along the path only belong to chain ASes.
        let chain: HashSet<AsIdx> = p.as_chain.iter().copied().collect();
        for s in &p.steps {
            assert!(chain.contains(&topo.router(s.router).owner));
        }
    }

    #[test]
    fn flow_variation_only_inside_diamonds() {
        let (topo, state, routes) = setup();
        // For non-ECMP paths without intra diamonds, all flows take the same
        // route; with diamonds, flows may differ but the canonical path is
        // identical.
        let src = AsIdx(12);
        let city = topo.as_info(src).hub_city;
        for d in 0..topo.num_ases() {
            let dst = topo.host_addr(AsIdx(d as u32), 9);
            let canon = canonical_path(&topo, &state, &routes, src, city, dst).expect("in plan");
            for flow in 0..8u64 {
                let p = forward(&topo, &state, &routes, src, city, dst, flow).expect("in plan");
                assert_eq!(p.as_chain, canon.as_chain, "AS chain must be flow-invariant");
                for (i, cr) in p.crossings.iter().enumerate() {
                    assert!(canon.crossings[i].contains(cr), "flow crossing outside canonical set");
                }
            }
        }
    }

    #[test]
    fn canonical_detects_border_change_on_bias_shift() {
        let (topo, mut state, routes) = setup();
        // Find a src/dst whose first crossing uses a multi-point, non-ecmp
        // adjacency; shift bias; canonical path must change at border level
        // but not AS level.
        for srci in 0..topo.num_ases() {
            let src = AsIdx(srci as u32);
            let city = topo.as_info(src).hub_city;
            for d in 0..topo.num_ases() {
                let dst = topo.host_addr(AsIdx(d as u32), 2);
                let canon =
                    canonical_path(&topo, &state, &routes, src, city, dst).expect("in plan");
                if canon.crossings.is_empty() {
                    continue;
                }
                let first = canon.crossings[0].clone();
                if first.len() != 1 {
                    continue;
                }
                let pt = topo.point(first[0]);
                let adj = topo.adjacency(pt.adj);
                if adj.points.len() < 2 || adj.ecmp {
                    continue;
                }
                let side_a = adj.a == src;
                if side_a {
                    state.bias_a[first[0].index()] = 1_000_000;
                } else {
                    state.bias_b[first[0].index()] = 1_000_000;
                }
                let after =
                    canonical_path(&topo, &state, &routes, src, city, dst).expect("in plan");
                assert!(after.same_as_path(&canon));
                assert!(!after.same_border_path(&canon));
                return;
            }
        }
        panic!("no suitable multi-point crossing found");
    }

    #[test]
    fn unreachable_when_partitioned() {
        let (topo, mut state, _) = setup();
        // Take down every adjacency: nothing beyond the source AS.
        for a in 0..state.adj_active.len() {
            state.adj_active[a] = false;
        }
        let routes = compute_routes(&topo, &state);
        let src = AsIdx(10);
        let city = topo.as_info(src).hub_city;
        let dst = topo.host_addr(AsIdx(0), 1);
        let p = forward(&topo, &state, &routes, src, city, dst, 0).expect("in plan");
        assert!(!p.reached);
        assert_eq!(p.as_chain, vec![src]);
        let c = canonical_path(&topo, &state, &routes, src, city, dst).expect("in plan");
        assert!(!c.reached);
    }

    #[test]
    fn forward_to_own_as() {
        let (topo, state, routes) = setup();
        let src = AsIdx(10);
        let city = topo.as_info(src).hub_city;
        let dst = topo.host_addr(src, 77);
        let p = forward(&topo, &state, &routes, src, city, dst, 0).expect("in plan");
        assert!(p.reached);
        assert_eq!(p.as_chain, vec![src]);
        assert!(p.crossings.is_empty());
    }

    #[test]
    fn out_of_plan_destination_rejected() {
        let (topo, state, routes) = setup();
        let src = AsIdx(10);
        let city = topo.as_info(src).hub_city;
        assert!(forward(&topo, &state, &routes, src, city, Ipv4::new(8, 8, 8, 8), 0).is_none());
    }
}
