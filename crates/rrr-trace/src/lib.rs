//! Data-plane simulation: forwarding paths, traceroute synthesis, and a
//! RIPE-Atlas-like measurement platform with probes, anchors, campaigns,
//! and rate limits.
//!
//! Forwarding shares the control plane's route table and hot-potato egress
//! selection (`rrr-bgp`), so the traceroutes synthesized here are mutually
//! consistent with the BGP updates the collectors see — the property that
//! makes cross-stream staleness signals meaningful.

pub mod forward;
pub mod platform;

pub use forward::{canonical_path, forward, CanonicalPath, ForwardPath, Step};
pub use platform::{Anchor, Platform, PlatformConfig, Probe};
