//! A RIPE-Atlas-like measurement platform: probes (some of which are
//! anchors), the anchoring mesh campaign, a topology-discovery campaign,
//! and ad-hoc measurements.
//!
//! Traceroutes synthesized here include the measurement noise the paper's
//! pipeline must survive: unresponsive routers, transient per-hop loss, and
//! Paris-style flow variation across rounds (load-balanced paths wander
//! within their diamond).

use crate::forward::forward;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rrr_bgp::Engine;
use rrr_topology::{AsIdx, Tier, Topology};
use rrr_types::{AnchorId, CityId, Hop, Ipv4, ProbeId, Timestamp, Traceroute, TracerouteId};

/// Platform configuration.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    pub seed: u64,
    /// Total probes, including anchors.
    pub num_probes: usize,
    /// The first `num_anchors` probes are anchors (well-known targets that
    /// also measure).
    pub num_anchors: usize,
    /// Non-anchor probes assigned to each anchor's mesh measurement.
    pub probes_per_anchor: usize,
    /// Probability a responsive hop transiently fails to answer.
    pub hop_loss_prob: f64,
    /// Number of Paris traceroute flow variants cycled across measurements.
    pub paris_ids: u64,
}

impl PlatformConfig {
    pub fn small(seed: u64) -> Self {
        PlatformConfig {
            seed,
            num_probes: 40,
            num_anchors: 8,
            probes_per_anchor: 6,
            hop_loss_prob: 0.01,
            paris_ids: 16,
        }
    }

    pub fn evaluation(seed: u64) -> Self {
        PlatformConfig {
            seed,
            num_probes: 220,
            num_anchors: 40,
            probes_per_anchor: 24,
            hop_loss_prob: 0.01,
            paris_ids: 16,
        }
    }
}

/// A measurement vantage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    pub id: ProbeId,
    pub asx: AsIdx,
    pub city: CityId,
    pub addr: Ipv4,
    pub is_anchor: bool,
}

/// An anchor: a probe with a well-known target address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Anchor {
    pub id: AnchorId,
    pub probe: ProbeId,
    pub addr: Ipv4,
}

/// The measurement platform.
pub struct Platform {
    pub probes: Vec<Probe>,
    pub anchors: Vec<Anchor>,
    /// Stable probe subset assigned to each anchor's mesh measurement.
    mesh: Vec<Vec<ProbeId>>,
    hop_loss_prob: f64,
    paris_ids: u64,
    rng: StdRng,
    next_id: u64,
}

impl Platform {
    /// Creates the platform: anchors are placed in distinct, well-connected
    /// ASes; probes are weighted toward edge networks (like real Atlas).
    pub fn new(topo: &Topology, cfg: &PlatformConfig) -> Self {
        assert!(cfg.num_anchors <= cfg.num_probes);
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Hosts per AS so several probes can share an AS without address
        // collisions.
        let mut host_counter = vec![0u32; topo.num_ases()];
        let mut alloc = |topo: &Topology, asx: AsIdx| {
            let k = host_counter[asx.index()];
            host_counter[asx.index()] += 1;
            topo.host_addr(asx, k)
        };

        let all: Vec<AsIdx> = (0..topo.num_ases()).map(|i| AsIdx(i as u32)).collect();
        let stubs: Vec<AsIdx> = all
            .iter()
            .copied()
            .filter(|&i| matches!(topo.as_info(i).tier, Tier::Stub | Tier::Regional))
            .collect();

        let mut probes = Vec::with_capacity(cfg.num_probes);
        for i in 0..cfg.num_probes {
            let is_anchor = i < cfg.num_anchors;
            // Anchors anywhere; probes 80% in edge networks.
            let asx = if is_anchor || stubs.is_empty() || rng.gen_bool(0.2) {
                *all.choose(&mut rng).expect("non-empty")
            } else {
                *stubs.choose(&mut rng).expect("non-empty")
            };
            let info = topo.as_info(asx);
            let city = *info.cities.choose(&mut rng).expect("AS has a city");
            let addr = alloc(topo, asx);
            probes.push(Probe { id: ProbeId(i as u32), asx, city, addr, is_anchor });
        }

        let anchors: Vec<Anchor> = probes
            .iter()
            .filter(|p| p.is_anchor)
            .enumerate()
            .map(|(i, p)| Anchor { id: AnchorId(i as u32), probe: p.id, addr: p.addr })
            .collect();

        // Mesh assignment: a stable random subset of non-anchor probes per
        // anchor (the paper: the probe set per anchor is kept stable).
        let non_anchor: Vec<ProbeId> =
            probes.iter().filter(|p| !p.is_anchor).map(|p| p.id).collect();
        let mesh = anchors
            .iter()
            .map(|_| {
                non_anchor
                    .choose_multiple(&mut rng, cfg.probes_per_anchor.min(non_anchor.len()))
                    .copied()
                    .collect()
            })
            .collect();

        Platform {
            probes,
            anchors,
            mesh,
            hop_loss_prob: cfg.hop_loss_prob,
            paris_ids: cfg.paris_ids,
            rng,
            next_id: 0,
        }
    }

    pub fn probe(&self, id: ProbeId) -> &Probe {
        &self.probes[id.index()]
    }

    /// Probes assigned to an anchor's mesh measurement.
    pub fn mesh_probes(&self, anchor: AnchorId) -> &[ProbeId] {
        &self.mesh[anchor.index()]
    }

    /// Issues one traceroute from `probe` to `dst` at time `t`.
    pub fn measure(&mut self, eng: &Engine, probe: ProbeId, dst: Ipv4, t: Timestamp) -> Traceroute {
        let p = self.probes[probe.index()];
        let paris: u64 = self.rng.gen_range(0..self.paris_ids);
        let flow = (probe.0 as u64) << 40 ^ (dst.value() as u64) << 8 ^ paris;
        let id = TracerouteId(self.next_id);
        self.next_id += 1;

        let topo = eng.topo();
        let Some(fwd) = forward(topo, eng.state(), eng.routes(), p.asx, p.city, dst, flow) else {
            return Traceroute {
                id,
                probe,
                src: p.addr,
                dst,
                time: t,
                hops: Vec::new(),
                reached: false,
            };
        };

        let mut hops: Vec<Hop> = Vec::with_capacity(fwd.steps.len() + 1);
        for s in &fwd.steps {
            let responsive =
                topo.router(s.router).responsive && !self.rng.gen_bool(self.hop_loss_prob);
            hops.push(if responsive { Hop::responsive(s.iface) } else { Hop::star() });
        }
        if fwd.reached && dst != p.addr {
            hops.push(Hop::responsive(dst));
        }
        Traceroute { id, probe, src: p.addr, dst, time: t, hops, reached: fwd.reached }
    }

    /// One anchoring-measurement round: every assigned probe traces to every
    /// anchor, and all anchors trace to each other (§5.1.1).
    pub fn anchoring_round(&mut self, eng: &Engine, t: Timestamp) -> Vec<Traceroute> {
        let mut out = Vec::new();
        let anchors = self.anchors.clone();
        for a in &anchors {
            for pid in self.mesh[a.id.index()].clone() {
                out.push(self.measure(eng, pid, a.addr, t));
            }
            for b in &anchors {
                if a.id != b.id {
                    out.push(self.measure(eng, b.probe, a.addr, t));
                }
            }
        }
        out
    }

    /// One round of the topology-discovery campaign (built-in #5051
    /// analogue): each destination prefix's `.1` address is probed from one
    /// randomly allocated probe.
    pub fn topology_round(&mut self, eng: &Engine, t: Timestamp) -> Vec<Traceroute> {
        let targets: Vec<Ipv4> = eng.topo().all_originations().map(|(p, _)| p.nth(1)).collect();
        let mut out = Vec::with_capacity(targets.len());
        for dst in targets {
            let pid = ProbeId(self.rng.gen_range(0..self.probes.len() as u32));
            out.push(self.measure(eng, pid, dst, t));
        }
        out
    }

    /// Ad-hoc random public measurements: `n` traceroutes from random
    /// probes. Destination popularity is skewed like real user-defined
    /// measurements: half the traceroutes target a small "popular" subset
    /// of networks, the rest are uniform.
    pub fn random_round(&mut self, eng: &Engine, t: Timestamp, n: usize) -> Vec<Traceroute> {
        let origin_count = eng.topo().num_ases();
        let popular = (origin_count / 8).max(1);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let pid = ProbeId(self.rng.gen_range(0..self.probes.len() as u32));
            let asx = if self.rng.gen_bool(0.5) {
                AsIdx(self.rng.gen_range(0..popular as u32))
            } else {
                AsIdx(self.rng.gen_range(0..origin_count as u32))
            };
            let prefixes = &eng.topo().as_info(asx).originated;
            let pfx = prefixes[self.rng.gen_range(0..prefixes.len())];
            let host = self.rng.gen_range(1..pfx.size().min(256));
            out.push(self.measure(eng, pid, pfx.nth(host), t));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrr_bgp::{generate_events, EngineConfig, EventConfig};
    use rrr_topology::{generate, TopologyConfig};
    use rrr_types::Duration;
    use std::sync::Arc;

    fn setup() -> (Engine, Platform) {
        let topo = Arc::new(generate(&TopologyConfig::small(11)));
        let events = generate_events(&topo, &EventConfig::small(11, Duration::days(5)));
        let eng = Engine::new(Arc::clone(&topo), &EngineConfig { seed: 11, num_vps: 6 }, events);
        let plat = Platform::new(&topo, &PlatformConfig::small(11));
        (eng, plat)
    }

    #[test]
    fn platform_layout() {
        let (_eng, plat) = setup();
        assert_eq!(plat.probes.len(), 40);
        assert_eq!(plat.anchors.len(), 8);
        for a in &plat.anchors {
            assert!(plat.probe(a.probe).is_anchor);
            assert_eq!(plat.probe(a.probe).addr, a.addr);
            assert_eq!(plat.mesh_probes(a.id).len(), 6);
        }
        // Probe addresses are unique.
        let mut seen = std::collections::HashSet::new();
        for p in &plat.probes {
            assert!(seen.insert(p.addr), "duplicate probe address");
        }
    }

    #[test]
    fn measure_produces_valid_traceroute() {
        let (eng, mut plat) = setup();
        let a = plat.anchors[0];
        let pid = plat.mesh_probes(a.id)[0];
        let tr = plat.measure(&eng, pid, a.addr, Timestamp(0));
        assert!(tr.reached);
        assert_eq!(tr.dst, a.addr);
        assert_eq!(tr.src, plat.probe(pid).addr);
        // Last hop is the destination.
        assert_eq!(tr.hops.last().and_then(|h| h.addr), Some(a.addr));
        assert!(!tr.has_ip_loop(), "{tr}");
    }

    #[test]
    fn anchoring_round_counts() {
        let (eng, mut plat) = setup();
        let round = plat.anchoring_round(&eng, Timestamp(0));
        // 8 anchors × (6 probes + 7 other anchors)
        assert_eq!(round.len(), 8 * (6 + 7));
    }

    #[test]
    fn topology_round_covers_all_prefixes() {
        let (eng, mut plat) = setup();
        let round = plat.topology_round(&eng, Timestamp(0));
        let total: usize = eng.topo().all_originations().count();
        assert_eq!(round.len(), total);
    }

    #[test]
    fn unresponsive_routers_yield_stars() {
        // With hop loss forced high, stars must appear.
        let topo = Arc::new(generate(&TopologyConfig::small(11)));
        let eng = Engine::new(Arc::clone(&topo), &EngineConfig { seed: 1, num_vps: 2 }, vec![]);
        let mut cfg = PlatformConfig::small(11);
        cfg.hop_loss_prob = 0.9;
        let mut plat = Platform::new(&topo, &cfg);
        let a = plat.anchors[0].addr;
        let pid = plat.probes.iter().find(|p| !p.is_anchor).expect("probe").id;
        let tr = plat.measure(&eng, pid, a, Timestamp(0));
        assert!(tr.has_stars());
    }

    #[test]
    fn deterministic_given_seed() {
        let (eng, mut plat1) = setup();
        let (_, mut plat2) = setup();
        let r1 = plat1.anchoring_round(&eng, Timestamp(0));
        let r2 = plat2.anchoring_round(&eng, Timestamp(0));
        assert_eq!(r1, r2);
    }

    #[test]
    fn random_round_in_plan() {
        let (eng, mut plat) = setup();
        let rs = plat.random_round(&eng, Timestamp(5), 50);
        assert_eq!(rs.len(), 50);
        for tr in &rs {
            assert!(tr.reached, "all plan destinations reachable initially");
        }
    }
}
