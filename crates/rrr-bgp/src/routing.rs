//! Gao–Rexford policy routing and hot-potato egress selection.
//!
//! Routes are computed per *origin AS* (all prefixes of an origin share the
//! same routing tree). Preference is the standard lexicographic order:
//! customer routes over peer routes over provider routes (local preference
//! by relationship), then shortest AS-path, then a deterministic tiebreak
//! that policy events can flip via per-(chooser, origin) salts.
//!
//! Export rules: routes learned from customers are exported to everyone;
//! routes learned from peers or providers are exported only to customers.
//! The staged computation below (customer BFS up, one peer hop, provider
//! Dijkstra down) enforces exactly these rules and is guaranteed stable.

use crate::state::NetState;
use rrr_topology::{AdjacencyId, AsIdx, Relationship, Topology};
use rrr_types::{CityId, PeeringPointId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Local-preference class of a route (higher = more preferred).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteClass {
    Provider = 0,
    Peer = 1,
    Customer = 2,
    /// The origin's own route.
    Origin = 3,
}

/// An AS's chosen route toward one origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// The next-hop AS (`None` only for the origin itself).
    pub next: Option<AsIdx>,
    pub class: RouteClass,
    /// AS hops to the origin (origin = 0).
    pub len: u16,
}

/// Routes for every (origin, AS) pair: `per_origin[origin][asn_idx]`.
#[derive(Debug, Clone)]
pub struct RouteTable {
    pub per_origin: Vec<Vec<Option<RouteEntry>>>,
}

impl RouteTable {
    /// The route of `who` toward `origin`.
    pub fn route(&self, origin: AsIdx, who: AsIdx) -> Option<RouteEntry> {
        self.per_origin[origin.index()][who.index()]
    }

    /// The AS-level chain from `src` to `origin` (inclusive of both), or
    /// `None` when `src` has no route.
    pub fn as_chain(&self, origin: AsIdx, src: AsIdx) -> Option<Vec<AsIdx>> {
        let mut chain = vec![src];
        let mut cur = src;
        while cur != origin {
            let entry = self.route(origin, cur)?;
            let next = entry.next?;
            chain.push(next);
            // Route tables built by `compute_routes` are loop-free, but stay
            // defensive against inconsistent hand-built tables.
            if chain.len() > self.per_origin.len() {
                return None;
            }
            cur = next;
        }
        Some(chain)
    }
}

/// Deterministic tiebreak key; lower wins. With salt 0 this is "lowest
/// neighbor ASN" (the classic BGP tiebreak analogue); a nonzero salt
/// permutes the order, modeling a policy flip.
fn tiebreak_key(salt: u64, via_asn: u32) -> u64 {
    if salt == 0 {
        via_asn as u64
    } else {
        // splitmix64 of (salt ^ asn): uncorrelated permutation per salt.
        let mut z = salt ^ (via_asn as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Computes the route table for all origins under the current state.
pub fn compute_routes(topo: &Topology, state: &NetState) -> RouteTable {
    let n = topo.num_ases();
    let mut per_origin = Vec::with_capacity(n);
    for o in 0..n {
        per_origin.push(routes_for_origin(topo, state, AsIdx(o as u32)));
    }
    RouteTable { per_origin }
}

/// Computes routes toward a single origin.
pub fn routes_for_origin(
    topo: &Topology,
    state: &NetState,
    origin: AsIdx,
) -> Vec<Option<RouteEntry>> {
    let n = topo.num_ases();
    let mut entry: Vec<Option<RouteEntry>> = vec![None; n];
    entry[origin.index()] = Some(RouteEntry { next: None, class: RouteClass::Origin, len: 0 });

    // Stage 1: customer routes, BFS up provider edges level by level.
    let mut frontier = vec![origin];
    while !frontier.is_empty() {
        // provider → best candidate (len is uniform within a level; pick by
        // tiebreak key among this level's candidates).
        let mut candidates: Vec<(AsIdx, AsIdx, u16)> = Vec::new(); // (provider, via, len)
        for &x in &frontier {
            let xlen = entry[x.index()].expect("frontier node has entry").len;
            for nref in &topo.as_info(x).neighbors {
                if nref.rel == Relationship::Provider
                    && entry[nref.peer.index()].is_none()
                    && state.adj_usable(topo, nref.adj)
                {
                    candidates.push((nref.peer, x, xlen + 1));
                }
            }
        }
        let mut next_frontier = Vec::new();
        candidates.sort_by_key(|&(p, via, _)| {
            (p, tiebreak_key(state.salt(p, origin), topo.asn_of(via).value()))
        });
        for &(p, via, len) in &candidates {
            if entry[p.index()].is_none() {
                entry[p.index()] =
                    Some(RouteEntry { next: Some(via), class: RouteClass::Customer, len });
                next_frontier.push(p);
            }
        }
        frontier = next_frontier;
    }

    // Stage 2: one peer hop from every AS holding a customer/origin route.
    let mut peer_cands: Vec<(AsIdx, AsIdx, u16)> = Vec::new();
    for x in 0..n {
        let Some(e) = entry[x] else { continue };
        if e.class < RouteClass::Customer {
            continue;
        }
        for nref in &topo.as_info(AsIdx(x as u32)).neighbors {
            if nref.rel == Relationship::Peer
                && entry[nref.peer.index()].is_none()
                && state.adj_usable(topo, nref.adj)
            {
                peer_cands.push((nref.peer, AsIdx(x as u32), e.len + 1));
            }
        }
    }
    peer_cands.sort_by_key(|&(p, via, len)| {
        (p, len, tiebreak_key(state.salt(p, origin), topo.asn_of(via).value()))
    });
    for &(p, via, len) in &peer_cands {
        if entry[p.index()].is_none() {
            entry[p.index()] = Some(RouteEntry { next: Some(via), class: RouteClass::Peer, len });
        }
    }

    // Stage 3: provider routes, Dijkstra down customer edges from every AS
    // that already has a route.
    let mut heap: BinaryHeap<Reverse<(u16, u64, u32, u32)>> = BinaryHeap::new();
    for x in 0..n {
        if let Some(e) = entry[x] {
            push_customer_edges(topo, state, origin, AsIdx(x as u32), e.len, &entry, &mut heap);
        }
    }
    while let Some(Reverse((len, _key, node, via))) = heap.pop() {
        let node = AsIdx(node);
        if entry[node.index()].is_some() {
            continue;
        }
        entry[node.index()] =
            Some(RouteEntry { next: Some(AsIdx(via)), class: RouteClass::Provider, len });
        push_customer_edges(topo, state, origin, node, len, &entry, &mut heap);
    }

    entry
}

fn push_customer_edges(
    topo: &Topology,
    state: &NetState,
    origin: AsIdx,
    from: AsIdx,
    from_len: u16,
    entry: &[Option<RouteEntry>],
    heap: &mut BinaryHeap<Reverse<(u16, u64, u32, u32)>>,
) {
    for nref in &topo.as_info(from).neighbors {
        if nref.rel == Relationship::Customer
            && entry[nref.peer.index()].is_none()
            && state.adj_usable(topo, nref.adj)
        {
            let key = tiebreak_key(state.salt(nref.peer, origin), topo.asn_of(from).value());
            heap.push(Reverse((from_len + 1, key, nref.peer.0, from.0)));
        }
    }
}

/// Egress selection: which peering point(s) AS `from` uses to hand traffic
/// to the neighbor on `adj`, for traffic entering `from` at `ingress_city`.
///
/// Returns all up points for ECMP adjacencies (an interdomain diamond) and
/// a single point otherwise, chosen lexicographically by (traffic-
/// engineering bias, IGP distance from the ingress city, point id). The
/// bias dominating the distance makes the selected interconnection
/// *consistent across ingress PoPs* — the paper's observation that "routing
/// decisions such as early exit will generally be consistent across a PoP
/// or city" (§4.2.2) — while equal-bias points still resolve by hot-potato
/// distance. Empty when no point is up.
pub fn egress_points(
    topo: &Topology,
    state: &NetState,
    from: AsIdx,
    adj: AdjacencyId,
    ingress_city: CityId,
) -> Vec<PeeringPointId> {
    let a = topo.adjacency(adj);
    let mut up: Vec<PeeringPointId> = state.up_points(topo, adj).collect();
    if up.is_empty() {
        return up;
    }
    if a.ecmp {
        up.sort_unstable();
        return up;
    }
    let best = up
        .iter()
        .copied()
        .min_by_key(|&p| {
            let pt = topo.point(p);
            (state.bias_for(topo, p, from), topo.igp_base_cost(ingress_city, pt.city), p)
        })
        .expect("non-empty");
    vec![best]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrr_topology::{generate, Tier, TopologyConfig};

    fn setup() -> (rrr_topology::Topology, NetState, RouteTable) {
        let topo = generate(&TopologyConfig::small(11));
        let state = NetState::new(&topo);
        let routes = compute_routes(&topo, &state);
        (topo, state, routes)
    }

    #[test]
    fn full_reachability_in_connected_graph() {
        let (topo, _state, routes) = setup();
        for o in 0..topo.num_ases() {
            for x in 0..topo.num_ases() {
                assert!(routes.per_origin[o][x].is_some(), "AS idx {x} has no route to origin {o}");
            }
        }
    }

    #[test]
    fn chains_are_loop_free_and_terminate() {
        let (topo, _state, routes) = setup();
        for o in 0..topo.num_ases() {
            let origin = AsIdx(o as u32);
            for x in 0..topo.num_ases() {
                let chain = routes.as_chain(origin, AsIdx(x as u32)).expect("route exists");
                assert_eq!(*chain.last().expect("non-empty"), origin);
                let mut seen = std::collections::HashSet::new();
                for h in &chain {
                    assert!(seen.insert(*h), "loop in chain to {origin:?}: {chain:?}");
                }
            }
        }
    }

    #[test]
    fn valley_free_property() {
        // After going up (provider) or across (peer), a path must only go
        // down (customer). Walk each chain and check relationship sequence.
        let (topo, _state, routes) = setup();
        for o in 0..topo.num_ases() {
            let origin = AsIdx(o as u32);
            for x in 0..topo.num_ases() {
                let chain = routes.as_chain(origin, AsIdx(x as u32)).expect("route");
                // classify each edge from the perspective of the *sender*
                // (traffic direction src → origin).
                let mut descended = false; // saw a peer or customer-direction edge
                for w in chain.windows(2) {
                    let rel = topo.rel(w[0], w[1]).expect("adjacent");
                    match rel {
                        Relationship::Provider => {
                            assert!(
                                !descended,
                                "valley: up edge after down/peer edge in {chain:?}"
                            );
                        }
                        Relationship::Peer => {
                            assert!(!descended, "two peer/down segments in {chain:?}");
                            descended = true;
                        }
                        Relationship::Customer => {
                            descended = true;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn prefer_customer_routes() {
        let (topo, _state, routes) = setup();
        // For every AS with a customer route to some origin, verify no
        // preferred class was skipped: its chosen class must be >= any
        // neighbor-offered class consistent with export rules. Spot check:
        // providers of an origin always use the customer route (direct or
        // via other customers).
        for o in 0..topo.num_ases() {
            let origin = AsIdx(o as u32);
            for nref in &topo.as_info(origin).neighbors {
                if nref.rel == Relationship::Customer {
                    // origin is a customer of nref.peer? no: rel is peer's
                    // role relative to origin. Customer means peer is
                    // origin's customer; skip.
                    continue;
                }
                if nref.rel == Relationship::Provider {
                    // nref.peer is origin's provider: it must hold a
                    // customer-class route to origin.
                    let e = routes.route(origin, nref.peer).expect("route");
                    assert_eq!(e.class, RouteClass::Customer);
                }
            }
        }
    }

    #[test]
    fn adjacency_failure_reroutes() {
        let (topo, mut state, routes) = setup();
        // Find a stub with 2+ providers; kill the adjacency it uses.
        let stub = (0..topo.num_ases())
            .map(|i| AsIdx(i as u32))
            .find(|&i| {
                topo.as_info(i).tier == Tier::Stub
                    && topo
                        .as_info(i)
                        .neighbors
                        .iter()
                        .filter(|n| n.rel == Relationship::Provider)
                        .count()
                        >= 2
            })
            .expect("multi-homed stub exists");
        // Pick an origin far away; the stub routes via some provider.
        let origin = AsIdx(0);
        let before = routes.route(origin, stub).expect("route");
        let via = before.next.expect("not origin");
        let adj = topo.as_info(stub).neighbor(via).expect("adjacent").adj;
        for p in &topo.adjacency(adj).points {
            state.point_up[p.index()] = false;
        }
        let after = compute_routes(&topo, &state);
        let e = after.route(origin, stub).expect("still reachable via other provider");
        assert_ne!(e.next, Some(via), "must avoid the failed adjacency");
    }

    #[test]
    fn salt_can_flip_tiebreaks_without_breaking_validity() {
        let (topo, mut state, before) = setup();
        // Salt every (chooser, origin) pair; recompute; paths must remain
        // valley-free and loop-free, and at least one route must change.
        for x in 0..topo.num_ases() {
            for o in 0..topo.num_ases() {
                state.tiebreak_salt.insert((AsIdx(x as u32), AsIdx(o as u32)), 0xDEADBEEF);
            }
        }
        let after = compute_routes(&topo, &state);
        let mut changed = 0;
        for o in 0..topo.num_ases() {
            for x in 0..topo.num_ases() {
                if before.per_origin[o][x].map(|e| e.next) != after.per_origin[o][x].map(|e| e.next)
                {
                    changed += 1;
                }
                // class and length must not degrade: salts only permute
                // equally-preferred candidates.
                let b = before.per_origin[o][x].expect("route");
                let a = after.per_origin[o][x].expect("route");
                assert_eq!(b.class, a.class, "salt changed class for ({o},{x})");
                assert_eq!(b.len, a.len, "salt changed length for ({o},{x})");
            }
        }
        assert!(changed > 0, "salting everything should flip some tiebreaks");
        for o in 0..topo.num_ases() {
            for x in 0..topo.num_ases() {
                assert!(after.as_chain(AsIdx(o as u32), AsIdx(x as u32)).is_some());
            }
        }
    }

    #[test]
    fn egress_selection_hot_potato() {
        let (topo, mut state, _routes) = setup();
        // Pick a non-ecmp multi-point adjacency.
        let adj = topo
            .adjacencies
            .iter()
            .find(|a| a.points.len() >= 2 && !a.ecmp && !a.latent)
            .expect("multi-point adjacency exists");
        let from = adj.a;
        let c0 = topo.point(adj.points[0]).city;
        let pts = egress_points(&topo, &state, from, adj.id, c0);
        assert_eq!(pts.len(), 1);
        // From the point's own city, that point is cost 0 + bias; raising
        // its bias far enough must divert selection.
        let chosen = pts[0];
        state.bias_a[chosen.index()] = 1_000_000;
        state.bias_b[chosen.index()] = 1_000_000;
        let pts2 = egress_points(&topo, &state, from, adj.id, c0);
        assert_eq!(pts2.len(), 1);
        assert_ne!(pts2[0], chosen, "bias change must shift the egress point");
    }

    #[test]
    fn egress_ecmp_returns_all_points() {
        let (topo, state, _routes) = setup();
        if let Some(adj) = topo.adjacencies.iter().find(|a| a.ecmp && a.points.len() >= 2) {
            let pts = egress_points(&topo, &state, adj.a, adj.id, topo.point(adj.points[0]).city);
            assert_eq!(pts.len(), adj.points.len());
        }
    }

    #[test]
    fn egress_empty_when_all_down() {
        let (topo, mut state, _routes) = setup();
        let adj = &topo.adjacencies[0];
        for p in &adj.points {
            state.point_up[p.index()] = false;
        }
        assert!(
            egress_points(&topo, &state, adj.a, adj.id, topo.point(adj.points[0]).city).is_empty()
        );
    }

    #[test]
    fn tiebreak_key_is_stable_and_salt_sensitive() {
        assert_eq!(tiebreak_key(0, 100), 100);
        assert_eq!(tiebreak_key(7, 100), tiebreak_key(7, 100));
        assert_ne!(tiebreak_key(7, 100), tiebreak_key(8, 100));
    }
}
