//! The routing event model: what changes in the network and when.
//!
//! Events are pre-generated for the whole campaign from a seed, so a run is
//! reproducible and the ground truth of "what changed when" is known exactly.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rrr_topology::{AdjacencyId, AsIdx, Topology};
use rrr_types::{Community, Duration, IxpId, PeeringPointId, Timestamp};
use serde::{Deserialize, Serialize};

/// A single network event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    pub time: Timestamp,
    pub kind: EventKind,
}

/// The kinds of changes the simulated network undergoes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A peering point's session goes down (maintenance, failure).
    PointDown(PeeringPointId),
    /// The session comes back.
    PointUp(PeeringPointId),
    /// A whole adjacency is deactivated (depeering / major outage).
    AdjacencyDown(AdjacencyId),
    /// …and reactivated.
    AdjacencyUp(AdjacencyId),
    /// Hot-potato shift: one side changes the IGP bias of a point, possibly
    /// moving the selected egress to another city — a border-level change
    /// invisible in AS paths.
    BiasShift { point: PeeringPointId, side_a: bool, bias: u32 },
    /// Internal IGP churn in one AS that does not move any egress: produces
    /// duplicate updates only.
    IgpWobble { asx: AsIdx },
    /// A routing-policy flip: permutes the AS's tiebreak among
    /// equally-preferred routes toward `origin` — an AS-path change.
    PolicySalt { asx: AsIdx, origin: AsIdx, salt: u64 },
    /// Attach or detach a traffic-engineering community unrelated to paths
    /// (false-positive source for the community technique, Fig 13).
    TeToggle { asx: AsIdx, community: Community },
    /// An AS joins an IXP: all its latent adjacencies at that IXP activate
    /// (§4.2.3).
    IxpJoin { asx: AsIdx, ixp: IxpId },
}

impl EventKind {
    /// Whether the event can change the AS-level route table.
    pub fn changes_routing(&self) -> bool {
        matches!(
            self,
            EventKind::PointDown(_)
                | EventKind::PointUp(_)
                | EventKind::AdjacencyDown(_)
                | EventKind::AdjacencyUp(_)
                | EventKind::PolicySalt { .. }
                | EventKind::IxpJoin { .. }
        )
    }
}

/// Per-day event rates; each category is sampled independently.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EventConfig {
    pub seed: u64,
    /// Campaign length.
    pub duration: Duration,
    /// Point failures per day (each reverts after an exponential holding
    /// time with the given mean).
    pub point_failures_per_day: f64,
    pub point_failure_mean_hold: Duration,
    /// Adjacency-wide outages per day.
    pub adjacency_failures_per_day: f64,
    pub adjacency_failure_mean_hold: Duration,
    /// Hot-potato bias shifts per day. A fraction revert after a hold.
    pub bias_shifts_per_day: f64,
    pub bias_revert_prob: f64,
    pub bias_mean_hold: Duration,
    /// Pure IGP wobbles per day (duplicates only).
    pub igp_wobbles_per_day: f64,
    /// Policy tiebreak flips per day.
    pub policy_flips_per_day: f64,
    /// TE community toggles per day (path-unrelated noise).
    pub te_toggles_per_day: f64,
    /// Total IXP joins spread over the campaign (bounded by latent
    /// memberships available).
    pub ixp_joins: usize,
}

impl EventConfig {
    /// Rates tuned for the evaluation topology: enough churn that ~15% of
    /// AS-level and ~25-30% of border-level paths change over 60 days
    /// (Figure 1's shape), without melting the network.
    pub fn evaluation(seed: u64, duration: Duration) -> Self {
        EventConfig {
            seed,
            duration,
            point_failures_per_day: 6.0,
            point_failure_mean_hold: Duration::hours(6),
            adjacency_failures_per_day: 0.8,
            adjacency_failure_mean_hold: Duration::hours(4),
            bias_shifts_per_day: 10.0,
            bias_revert_prob: 0.4,
            bias_mean_hold: Duration::hours(12),
            igp_wobbles_per_day: 4.0,
            policy_flips_per_day: 2.0,
            te_toggles_per_day: 6.0,
            ixp_joins: 12,
        }
    }

    /// A light schedule for unit tests.
    pub fn small(seed: u64, duration: Duration) -> Self {
        EventConfig {
            seed,
            duration,
            point_failures_per_day: 8.0,
            point_failure_mean_hold: Duration::hours(3),
            adjacency_failures_per_day: 2.0,
            adjacency_failure_mean_hold: Duration::hours(2),
            bias_shifts_per_day: 12.0,
            bias_revert_prob: 0.5,
            bias_mean_hold: Duration::hours(6),
            igp_wobbles_per_day: 3.0,
            policy_flips_per_day: 4.0,
            te_toggles_per_day: 3.0,
            ixp_joins: 2,
        }
    }
}

/// Exponential inter-arrival sampling (Poisson process) of `rate_per_day`
/// over `[0, duration)`.
fn poisson_times(rng: &mut StdRng, rate_per_day: f64, duration: Duration) -> Vec<Timestamp> {
    let mut out = Vec::new();
    if rate_per_day <= 0.0 {
        return out;
    }
    let mean_gap = 86_400.0 / rate_per_day;
    let mut t = 0.0f64;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -mean_gap * u.ln();
        if t >= duration.as_secs() as f64 {
            return out;
        }
        out.push(Timestamp(t as u64));
    }
}

fn exp_hold(rng: &mut StdRng, mean: Duration) -> Duration {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    Duration((-(mean.as_secs() as f64) * u.ln()).max(60.0) as u64)
}

/// Generates the full, time-sorted event schedule for a campaign.
pub fn generate_events(topo: &Topology, cfg: &EventConfig) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out: Vec<Event> = Vec::new();

    let active_points: Vec<PeeringPointId> =
        topo.points.iter().filter(|p| !topo.adjacency(p.adj).latent).map(|p| p.id).collect();
    let active_adjs: Vec<AdjacencyId> =
        topo.adjacencies.iter().filter(|a| !a.latent).map(|a| a.id).collect();

    // Point failures with reverts. Only fail points whose adjacency has >1
    // point half the time, so some failures cause egress shifts and some
    // cause AS-path changes.
    for t in poisson_times(&mut rng, cfg.point_failures_per_day, cfg.duration) {
        let Some(&p) = active_points.choose(&mut rng) else { continue };
        let hold = exp_hold(&mut rng, cfg.point_failure_mean_hold);
        out.push(Event { time: t, kind: EventKind::PointDown(p) });
        out.push(Event { time: t + hold, kind: EventKind::PointUp(p) });
    }

    for t in poisson_times(&mut rng, cfg.adjacency_failures_per_day, cfg.duration) {
        let Some(&a) = active_adjs.choose(&mut rng) else { continue };
        let hold = exp_hold(&mut rng, cfg.adjacency_failure_mean_hold);
        out.push(Event { time: t, kind: EventKind::AdjacencyDown(a) });
        out.push(Event { time: t + hold, kind: EventKind::AdjacencyUp(a) });
    }

    // Bias shifts (hot-potato changes); some revert to the original bias.
    for t in poisson_times(&mut rng, cfg.bias_shifts_per_day, cfg.duration) {
        let Some(&p) = active_points.choose(&mut rng) else { continue };
        let side_a = rng.gen_bool(0.5);
        let old = if side_a { topo.point(p).bias_a } else { topo.point(p).bias_b };
        // Traffic-engineering moves under lexicographic (bias-first)
        // selection: promote the point above every sibling, demote it below
        // all of them, or wiggle inside the normal range (a MED-style tweak
        // that may flip nothing but still re-signs routes).
        let roll: f64 = rng.gen_range(0.0..1.0);
        let new_bias = if roll < 0.45 {
            0
        } else if roll < 0.9 {
            rng.gen_range(60..100)
        } else {
            rng.gen_range(1..50)
        };
        out.push(Event {
            time: t,
            kind: EventKind::BiasShift { point: p, side_a, bias: new_bias },
        });
        if rng.gen_bool(cfg.bias_revert_prob) {
            let hold = exp_hold(&mut rng, cfg.bias_mean_hold);
            out.push(Event {
                time: t + hold,
                kind: EventKind::BiasShift { point: p, side_a, bias: old },
            });
        }
    }

    for t in poisson_times(&mut rng, cfg.igp_wobbles_per_day, cfg.duration) {
        let asx = AsIdx(rng.gen_range(0..topo.num_ases() as u32));
        out.push(Event { time: t, kind: EventKind::IgpWobble { asx } });
    }

    for t in poisson_times(&mut rng, cfg.policy_flips_per_day, cfg.duration) {
        let asx = AsIdx(rng.gen_range(0..topo.num_ases() as u32));
        let origin = AsIdx(rng.gen_range(0..topo.num_ases() as u32));
        out.push(Event {
            time: t,
            kind: EventKind::PolicySalt { asx, origin, salt: rng.gen::<u64>() | 1 },
        });
    }

    for t in poisson_times(&mut rng, cfg.te_toggles_per_day, cfg.duration) {
        let asx = AsIdx(rng.gen_range(0..topo.num_ases() as u32));
        let asn = topo.asn_of(asx).value().min(u16::MAX as u32);
        let community = Community::new(asn, rng.gen_range(100..1_000));
        out.push(Event { time: t, kind: EventKind::TeToggle { asx, community } });
    }

    // IXP joins: pick distinct latent (AS, IXP) memberships and spread them
    // uniformly over the middle of the campaign.
    let mut latent_memberships: Vec<(AsIdx, IxpId)> = Vec::new();
    for adj in topo.adjacencies.iter().filter(|a| a.latent) {
        let ixp = topo.point(adj.points[0]).ixp.expect("latent adjacencies are IXP peerings");
        // the latent side is the one not in the initial member list
        let members = &topo.ixp(ixp).members;
        for side in [adj.a, adj.b] {
            if !members.contains(&side) && !latent_memberships.contains(&(side, ixp)) {
                latent_memberships.push((side, ixp));
            }
        }
    }
    latent_memberships.shuffle(&mut rng);
    for (i, (asx, ixp)) in latent_memberships.iter().take(cfg.ixp_joins).enumerate() {
        let span = cfg.duration.as_secs();
        let t = Timestamp(span / 4 + (i as u64 + 1) * span / (2 * (cfg.ixp_joins as u64 + 1)));
        out.push(Event { time: t, kind: EventKind::IxpJoin { asx: *asx, ixp: *ixp } });
    }

    out.sort_by_key(|e| e.time);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrr_topology::{generate, TopologyConfig};

    #[test]
    fn schedule_sorted_and_in_range() {
        let topo = generate(&TopologyConfig::small(5));
        let cfg = EventConfig::small(9, Duration::days(10));
        let ev = generate_events(&topo, &cfg);
        assert!(!ev.is_empty());
        for w in ev.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // Down events are within range; reverts may spill past the end.
        for e in &ev {
            if matches!(e.kind, EventKind::PointDown(_) | EventKind::AdjacencyDown(_)) {
                assert!(e.time.as_secs() < cfg.duration.as_secs());
            }
        }
    }

    #[test]
    fn deterministic() {
        let topo = generate(&TopologyConfig::small(5));
        let cfg = EventConfig::small(9, Duration::days(10));
        assert_eq!(generate_events(&topo, &cfg), generate_events(&topo, &cfg));
    }

    #[test]
    fn failures_always_revert() {
        let topo = generate(&TopologyConfig::small(5));
        let cfg = EventConfig::small(10, Duration::days(20));
        let ev = generate_events(&topo, &cfg);
        let downs = ev.iter().filter(|e| matches!(e.kind, EventKind::PointDown(_))).count();
        let ups = ev.iter().filter(|e| matches!(e.kind, EventKind::PointUp(_))).count();
        assert_eq!(downs, ups);
    }

    #[test]
    fn ixp_joins_target_latent_members() {
        let topo = generate(&TopologyConfig::small(5));
        let cfg = EventConfig::small(10, Duration::days(20));
        let ev = generate_events(&topo, &cfg);
        let joins: Vec<_> = ev
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::IxpJoin { asx, ixp } => Some((asx, ixp)),
                _ => None,
            })
            .collect();
        assert!(!joins.is_empty(), "latent members exist so joins must be scheduled");
        for (asx, ixp) in joins {
            assert!(!topo.ixp(ixp).members.contains(&asx));
        }
    }

    #[test]
    fn poisson_rate_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(1);
        let times = poisson_times(&mut rng, 10.0, Duration::days(100));
        // Expect ~1000 events; allow generous tolerance.
        assert!((700..1300).contains(&times.len()), "{}", times.len());
    }
}
