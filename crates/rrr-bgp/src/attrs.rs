//! Per-vantage-point route attributes: the AS path, the communities, and the
//! internal "signature" whose change without visible attribute change
//! produces duplicate updates.

use crate::routing::{egress_points, RouteTable};
use crate::state::NetState;
use rrr_topology::{AsIdx, Topology};
use rrr_types::{AsPath, CityId, Community};

/// What a BGP vantage point would advertise to its collector for routes
/// toward one origin AS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteAttrs {
    /// AS path including route-server ASNs where sessions cross one.
    pub path: AsPath,
    /// Communities after geo tagging, TE noise, and stripping.
    pub communities: Vec<Community>,
    /// Hash over the concrete egress-point chain and on-path IGP epochs.
    /// A change here with equal `path` and `communities` is exactly the
    /// situation in which a router emits a *duplicate* update (§4.1.4).
    pub signature: u64,
}

fn mix(h: u64, v: u64) -> u64 {
    let mut z = (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// Computes the attributes of the route from an AS (`vp_as`, homed at
/// `vp_city`) toward `origin`, or `None` when unreachable.
///
/// The walk follows the route table hop by hop; at each hop the egress
/// peering point is chosen by the same hot-potato function the data plane
/// uses, so a community advertised by an AS names the city where that AS
/// *currently* hands traffic to the next hop — the Figure 3 behaviour.
pub fn route_attrs(
    topo: &Topology,
    state: &NetState,
    routes: &RouteTable,
    vp_as: AsIdx,
    vp_city: CityId,
    origin: AsIdx,
) -> Option<RouteAttrs> {
    // Collect (asx, egress point toward next hop) pairs from vp to origin.
    let mut chain: Vec<(AsIdx, Option<rrr_types::PeeringPointId>, bool)> = Vec::new();
    let mut cur = vp_as;
    let mut cur_city = vp_city;
    let mut sig: u64 = 0x243F_6A88_85A3_08D3;
    while cur != origin {
        let entry = routes.route(origin, cur)?;
        let next = entry.next?;
        let adj = topo.as_info(cur).neighbor(next)?.adj;
        let pts = egress_points(topo, state, cur, adj, cur_city);
        let p = *pts.first()?;
        let pt = topo.point(p);
        chain.push((cur, Some(p), pt.route_server));
        sig = mix(sig, p.0 as u64 + 1);
        sig = mix(sig, state.point_epoch[p.index()]);
        cur_city = pt.city;
        cur = next;
        if chain.len() > topo.num_ases() {
            return None; // defensive: inconsistent route table
        }
    }
    chain.push((origin, None, false));

    // Signature also covers on-path internal epochs, so IGP wobbles inside
    // any traversed AS re-sign the route.
    for &(x, _, _) in &chain {
        sig = mix(sig, state.wobble_epoch[x.index()]);
    }

    // AS path, with route-server ASNs spliced in between the session's
    // endpoints.
    let mut path = Vec::new();
    for &(x, point, rs) in &chain {
        path.push(topo.asn_of(x));
        if rs {
            if let Some(ixp) = point.and_then(|p| topo.point(p).ixp) {
                path.push(topo.ixp(ixp).asn);
            }
        }
    }

    // Communities: origin-side first, honoring stripping.
    let mut comms: Vec<Community> = Vec::new();
    for &(x, point, _) in chain.iter().rev() {
        let info = topo.as_info(x);
        if info.strips_communities {
            comms.clear();
        }
        if let Some(p) = point {
            comms.push(Community::geo(info.asn, topo.point(p).city));
        }
        for &te in &state.te_communities[x.index()] {
            comms.push(te);
        }
    }
    comms.sort_unstable();
    comms.dedup();

    Some(RouteAttrs { path: AsPath(path), communities: comms, signature: sig })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::compute_routes;
    use rrr_topology::{generate, TopologyConfig};

    fn setup() -> (rrr_topology::Topology, NetState, RouteTable) {
        let topo = generate(&TopologyConfig::small(11));
        let state = NetState::new(&topo);
        let routes = compute_routes(&topo, &state);
        (topo, state, routes)
    }

    #[test]
    fn attrs_exist_and_start_and_end_right() {
        let (topo, state, routes) = setup();
        let vp = AsIdx(5);
        let city = topo.as_info(vp).hub_city;
        for o in 0..topo.num_ases() {
            let origin = AsIdx(o as u32);
            let attrs = route_attrs(&topo, &state, &routes, vp, city, origin).expect("reachable");
            let stripped = attrs.path.stripped(&topo.registry.route_server_asns);
            assert_eq!(stripped.head(), Some(topo.asn_of(vp)));
            assert_eq!(stripped.origin(), Some(topo.asn_of(origin)));
            assert!(!stripped.has_loop(), "loop in {}", attrs.path);
        }
    }

    #[test]
    fn self_route_is_trivial() {
        let (topo, state, routes) = setup();
        let vp = AsIdx(3);
        let a = route_attrs(&topo, &state, &routes, vp, topo.as_info(vp).hub_city, vp)
            .expect("self route");
        assert_eq!(a.path.len(), 1);
        assert!(a.communities.iter().all(|c| !c.is_geo()));
    }

    #[test]
    fn igp_wobble_changes_signature_only() {
        let (topo, mut state, routes) = setup();
        let vp = AsIdx(5);
        let city = topo.as_info(vp).hub_city;
        let origin = AsIdx(0);
        let before = route_attrs(&topo, &state, &routes, vp, city, origin).expect("reachable");
        // Wobble an AS on the path.
        let on_path = routes.as_chain(origin, vp).expect("chain")[1];
        state.wobble_epoch[on_path.index()] += 1;
        let after = route_attrs(&topo, &state, &routes, vp, city, origin).expect("reachable");
        assert_eq!(before.path, after.path);
        assert_eq!(before.communities, after.communities);
        assert_ne!(before.signature, after.signature, "wobble must re-sign");
        // Wobbling an off-path AS must NOT change the signature.
        let mut state2 = NetState::new(&topo);
        let chain = routes.as_chain(origin, vp).expect("chain");
        let off_path = (0..topo.num_ases())
            .map(|i| AsIdx(i as u32))
            .find(|x| !chain.contains(x))
            .expect("some AS off path");
        state2.wobble_epoch[off_path.index()] += 1;
        let after2 = route_attrs(&topo, &state2, &routes, vp, city, origin).expect("reachable");
        assert_eq!(before.signature, after2.signature);
    }

    #[test]
    fn te_community_appears_without_path_change() {
        let (topo, mut state, routes) = setup();
        let vp = AsIdx(5);
        let city = topo.as_info(vp).hub_city;
        let origin = AsIdx(0);
        let before = route_attrs(&topo, &state, &routes, vp, city, origin).expect("reachable");
        let chain = routes.as_chain(origin, vp).expect("chain");
        // Attach a TE community at the VP AS itself (never stripped en route).
        let x = chain[0];
        let te = Community::new(topo.asn_of(x).value().min(65_535), 666);
        state.te_communities[x.index()].insert(te);
        let after = route_attrs(&topo, &state, &routes, vp, city, origin).expect("reachable");
        assert_eq!(before.path, after.path);
        assert!(after.communities.contains(&te));
        assert!(!before.communities.contains(&te));
    }

    #[test]
    fn geo_community_tracks_egress_point() {
        let (topo, mut state, routes) = setup();
        // Find a VP and origin whose first hop crosses a multi-point,
        // non-ecmp adjacency, then shift the bias to flip the point.
        for vpi in 0..topo.num_ases() {
            let vp = AsIdx(vpi as u32);
            let city = topo.as_info(vp).hub_city;
            for o in 0..topo.num_ases() {
                let origin = AsIdx(o as u32);
                if origin == vp {
                    continue;
                }
                let Some(chain) = routes.as_chain(origin, vp) else { continue };
                let next = chain[1];
                let Some(nref) = topo.as_info(vp).neighbor(next) else { continue };
                let adj = topo.adjacency(nref.adj);
                if adj.points.len() < 2 || adj.ecmp {
                    continue;
                }
                let before =
                    route_attrs(&topo, &state, &routes, vp, city, origin).expect("reachable");
                let chosen = egress_points(&topo, &state, vp, adj.id, city)[0];
                // penalize the chosen point from vp's side
                if adj.a == vp {
                    state.bias_a[chosen.index()] = 1_000_000;
                } else {
                    state.bias_b[chosen.index()] = 1_000_000;
                }
                state.wobble_epoch[vp.index()] += 1;
                let after =
                    route_attrs(&topo, &state, &routes, vp, city, origin).expect("reachable");
                assert_eq!(before.path, after.path, "AS path must not change");
                if !topo.as_info(vp).strips_communities {
                    // the vp AS's geo community must differ (different city
                    // or same city different point => could collide when the
                    // other point is in the same city; accept signature
                    // change as the invariant, communities as likely change)
                }
                assert_ne!(before.signature, after.signature);
                return;
            }
        }
        panic!("no suitable multi-point first hop found in small topology");
    }
}
