//! The BGP engine: applies the event schedule, maintains per-VP RIBs, and
//! emits the update stream a route collector would publish.

use crate::attrs::{route_attrs, RouteAttrs};
use crate::events::{Event, EventKind};
use crate::routing::{compute_routes, RouteTable};
use crate::state::NetState;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rrr_topology::{AsIdx, Tier, Topology};
use rrr_types::{Asn, BgpElem, BgpUpdate, CityId, Timestamp, VpId};
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    pub seed: u64,
    /// Number of collector-peer vantage points (each in a distinct AS).
    pub num_vps: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { seed: 1, num_vps: 24 }
    }
}

/// A BGP vantage point: a router in `asx` (at `city`) peering with a
/// collector and providing a full feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VantagePoint {
    pub id: VpId,
    pub asx: AsIdx,
    pub city: CityId,
}

/// The control-plane simulation engine.
pub struct Engine {
    topo: Arc<Topology>,
    state: NetState,
    routes: RouteTable,
    vps: Vec<VantagePoint>,
    /// last advertised attributes per `[vp][origin]`
    last_attrs: Vec<Vec<Option<RouteAttrs>>>,
    events: Vec<Event>,
    cursor: usize,
    now: Timestamp,
    /// Bumped on every applied event; lets consumers cache state-derived
    /// values (e.g. ground-truth paths) between events.
    version: u64,
}

impl Engine {
    /// Builds the engine: selects VPs (tier-1 and transit ASes first, then
    /// random others) and computes the initial table.
    pub fn new(topo: Arc<Topology>, cfg: &EngineConfig, mut events: Vec<Event>) -> Self {
        // Event application requires time order; sort defensively (stable,
        // so equal-time events keep their scheduled sequence).
        events.sort_by_key(|e| e.time);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut core: Vec<AsIdx> = (0..topo.num_ases())
            .map(|i| AsIdx(i as u32))
            .filter(|&i| matches!(topo.as_info(i).tier, Tier::Tier1 | Tier::Transit))
            .collect();
        core.shuffle(&mut rng);
        let mut rest: Vec<AsIdx> = (0..topo.num_ases())
            .map(|i| AsIdx(i as u32))
            .filter(|&i| !matches!(topo.as_info(i).tier, Tier::Tier1 | Tier::Transit))
            .collect();
        rest.shuffle(&mut rng);
        let chosen: Vec<AsIdx> = core.into_iter().chain(rest).take(cfg.num_vps).collect();
        let vps: Vec<VantagePoint> = chosen
            .iter()
            .enumerate()
            .map(|(i, &asx)| VantagePoint {
                id: VpId(i as u32),
                asx,
                city: topo.as_info(asx).hub_city,
            })
            .collect();

        let state = NetState::new(&topo);
        let routes = compute_routes(&topo, &state);
        let last_attrs = vps
            .iter()
            .map(|vp| {
                (0..topo.num_ases())
                    .map(|o| route_attrs(&topo, &state, &routes, vp.asx, vp.city, AsIdx(o as u32)))
                    .collect()
            })
            .collect();

        Engine {
            topo,
            state,
            routes,
            vps,
            last_attrs,
            events,
            cursor: 0,
            now: Timestamp::ZERO,
            version: 0,
        }
    }

    pub fn topo(&self) -> &Topology {
        &self.topo
    }
    pub fn topo_arc(&self) -> Arc<Topology> {
        Arc::clone(&self.topo)
    }
    pub fn state(&self) -> &NetState {
        &self.state
    }
    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }
    pub fn vps(&self) -> &[VantagePoint] {
        &self.vps
    }
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Each vantage point with its AS number — the peer table an MRT
    /// encoder needs to frame this engine's update stream.
    pub fn vp_asns(&self) -> Vec<(VpId, Asn)> {
        self.vps.iter().map(|vp| (vp.id, self.topo.asn_of(vp.asx))).collect()
    }

    /// State version: incremented once per applied event.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Current attributes of a VP's route toward an origin.
    pub fn vp_attrs(&self, vp: VpId, origin: AsIdx) -> Option<&RouteAttrs> {
        self.last_attrs[vp.index()][origin.index()].as_ref()
    }

    /// The initial RIB as a set of announce records (a TABLE_DUMP analogue)
    /// at the current time.
    pub fn rib_snapshot(&self) -> Vec<BgpUpdate> {
        let mut out = Vec::new();
        for vp in &self.vps {
            for o in 0..self.topo.num_ases() {
                if let Some(attrs) = &self.last_attrs[vp.id.index()][o] {
                    for &prefix in &self.topo.as_info(AsIdx(o as u32)).originated {
                        out.push(BgpUpdate {
                            time: self.now,
                            vp: vp.id,
                            prefix,
                            elem: BgpElem::Announce {
                                path: attrs.path.clone(),
                                communities: attrs.communities.clone(),
                            },
                        });
                    }
                }
            }
        }
        out
    }

    /// Advances simulated time to `t`, applying every event scheduled in
    /// `(now, t]` and returning the BGP updates emitted, in time order.
    ///
    /// Duplicate updates appear as announcements identical to the previous
    /// one — exactly what a collector dump shows.
    pub fn advance_to(&mut self, t: Timestamp) -> Vec<BgpUpdate> {
        let mut out = Vec::new();
        while self.cursor < self.events.len() && self.events[self.cursor].time <= t {
            let ev = self.events[self.cursor].clone();
            self.cursor += 1;
            self.version += 1;
            self.apply_event(&ev, &mut out);
        }
        self.now = t;
        out
    }

    /// Applies one event and appends resulting updates.
    fn apply_event(&mut self, ev: &Event, out: &mut Vec<BgpUpdate>) {
        match &ev.kind {
            EventKind::PointDown(p) => {
                self.state.point_up[p.index()] = false;
            }
            EventKind::PointUp(p) => {
                // Never re-activate points of still-latent adjacencies.
                self.state.point_up[p.index()] = true;
            }
            EventKind::AdjacencyDown(a) => {
                self.state.adj_active[a.index()] = false;
            }
            EventKind::AdjacencyUp(a) => {
                self.state.adj_active[a.index()] = true;
            }
            EventKind::BiasShift { point, side_a, bias } => {
                if *side_a {
                    self.state.bias_a[point.index()] = *bias;
                } else {
                    self.state.bias_b[point.index()] = *bias;
                }
                // Routes whose egress chain crosses this point re-sign
                // (MED/IGP attribute change), producing duplicates scoped
                // to the affected routes.
                self.state.point_epoch[point.index()] += 1;
            }
            EventKind::IgpWobble { asx } => {
                self.state.wobble_epoch[asx.index()] += 1;
            }
            EventKind::PolicySalt { asx, origin, salt } => {
                self.state.tiebreak_salt.insert((*asx, *origin), *salt);
            }
            EventKind::TeToggle { asx, community } => {
                let set = &mut self.state.te_communities[asx.index()];
                if !set.remove(community) {
                    set.insert(*community);
                }
            }
            EventKind::IxpJoin { asx, ixp } => {
                for adj in self.topo.adjacencies.iter().filter(|a| a.latent) {
                    if adj.a != *asx && adj.b != *asx {
                        continue;
                    }
                    let at = self.topo.point(adj.points[0]).ixp;
                    if at == Some(*ixp) {
                        self.state.adj_active[adj.id.index()] = true;
                    }
                }
                self.state.activated_memberships.push((*asx, *ixp));
            }
        }

        if ev.kind.changes_routing() {
            self.routes = compute_routes(&self.topo, &self.state);
        }
        self.emit_diffs(ev.time, out);
    }

    /// Recomputes attributes for every (VP, origin) pair and emits updates
    /// where they differ from the last advertisement. A signature-only
    /// change re-announces identical attributes (a duplicate).
    fn emit_diffs(&mut self, time: Timestamp, out: &mut Vec<BgpUpdate>) {
        for vp in &self.vps {
            for o in 0..self.topo.num_ases() {
                let origin = AsIdx(o as u32);
                let new =
                    route_attrs(&self.topo, &self.state, &self.routes, vp.asx, vp.city, origin);
                let old = &self.last_attrs[vp.id.index()][o];
                if *old == new {
                    continue;
                }
                match (&old, &new) {
                    (_, Some(attrs)) => {
                        for &prefix in &self.topo.as_info(origin).originated {
                            out.push(BgpUpdate {
                                time,
                                vp: vp.id,
                                prefix,
                                elem: BgpElem::Announce {
                                    path: attrs.path.clone(),
                                    communities: attrs.communities.clone(),
                                },
                            });
                        }
                    }
                    (Some(_), None) => {
                        for &prefix in &self.topo.as_info(origin).originated {
                            out.push(BgpUpdate {
                                time,
                                vp: vp.id,
                                prefix,
                                elem: BgpElem::Withdraw,
                            });
                        }
                    }
                    (None, None) => {}
                }
                self.last_attrs[vp.id.index()][o] = new;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{generate_events, EventConfig};
    use rrr_topology::{generate, TopologyConfig};
    use rrr_types::Duration;

    fn engine(seed: u64, days: u64) -> Engine {
        let topo = Arc::new(generate(&TopologyConfig::small(seed)));
        let events = generate_events(&topo, &EventConfig::small(seed, Duration::days(days)));
        Engine::new(topo, &EngineConfig { seed, num_vps: 8 }, events)
    }

    #[test]
    fn initial_rib_covers_all_reachable_pairs() {
        let e = engine(3, 5);
        let rib = e.rib_snapshot();
        // 8 vps × 60 origins × >=1 prefix
        assert!(rib.len() >= 8 * 60, "rib too small: {}", rib.len());
        assert!(rib.iter().all(|u| u.is_announce()));
    }

    #[test]
    fn advance_emits_updates_in_order() {
        let mut e = engine(3, 5);
        let ups = e.advance_to(Timestamp(Duration::days(5).as_secs()));
        assert!(!ups.is_empty(), "a 5-day schedule must produce updates");
        for w in ups.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert_eq!(e.now(), Timestamp(Duration::days(5).as_secs()));
    }

    #[test]
    fn duplicate_updates_exist() {
        // IGP wobbles must produce announcements identical to the previous
        // state of the same (vp, prefix).
        let mut e = engine(4, 10);
        use std::collections::HashMap;
        let mut last: HashMap<(VpId, rrr_types::Prefix), BgpElem> = HashMap::new();
        for u in e.rib_snapshot() {
            last.insert((u.vp, u.prefix), u.elem);
        }
        let ups = e.advance_to(Timestamp(Duration::days(10).as_secs()));
        let mut dups = 0;
        for u in ups {
            if let Some(prev) = last.get(&(u.vp, u.prefix)) {
                if *prev == u.elem {
                    dups += 1;
                }
            }
            last.insert((u.vp, u.prefix), u.elem);
        }
        assert!(dups > 0, "expected duplicate updates from IGP wobbles");
    }

    #[test]
    fn community_changes_with_same_path_exist() {
        let mut e = engine(5, 10);
        use std::collections::HashMap;
        let mut last: HashMap<(VpId, rrr_types::Prefix), BgpElem> = HashMap::new();
        for u in e.rib_snapshot() {
            last.insert((u.vp, u.prefix), u.elem);
        }
        let ups = e.advance_to(Timestamp(Duration::days(10).as_secs()));
        let mut comm_only = 0;
        for u in ups {
            if let (
                Some(BgpElem::Announce { path: p0, communities: c0 }),
                BgpElem::Announce { path, communities },
            ) = (last.get(&(u.vp, u.prefix)), &u.elem)
            {
                if p0 == path && c0 != communities {
                    comm_only += 1;
                }
            }
            last.insert((u.vp, u.prefix), u.elem);
        }
        assert!(comm_only > 0, "expected community-only changes from hot-potato shifts");
    }

    #[test]
    fn vps_are_distinct_ases() {
        let e = engine(6, 1);
        let mut seen = std::collections::HashSet::new();
        for vp in e.vps() {
            assert!(seen.insert(vp.asx), "duplicate VP AS");
        }
    }

    #[test]
    fn ixp_join_activates_latent_adjacency() {
        let topo = Arc::new(generate(&TopologyConfig::small(7)));
        let events = generate_events(&topo, &EventConfig::small(7, Duration::days(20)));
        let join_time = events
            .iter()
            .find_map(|e| match e.kind {
                EventKind::IxpJoin { .. } => Some(e.time),
                _ => None,
            })
            .expect("join scheduled");
        let mut e = Engine::new(Arc::clone(&topo), &EngineConfig { seed: 7, num_vps: 6 }, events);
        assert!(e.state().activated_memberships.is_empty());
        e.advance_to(join_time);
        assert!(!e.state().activated_memberships.is_empty());
        let (asx, ixp) = e.state().activated_memberships[0];
        // At least one latent adjacency of that AS at that IXP is now active.
        let activated = topo.adjacencies.iter().any(|a| {
            a.latent
                && (a.a == asx || a.b == asx)
                && topo.point(a.points[0]).ixp == Some(ixp)
                && e.state().adj_active[a.id.index()]
        });
        assert!(activated);
    }

    #[test]
    fn withdraw_and_reannounce_on_partition() {
        // Cut ALL adjacencies of a stub: every VP must withdraw its
        // prefixes; restoring must re-announce.
        let topo = Arc::new(generate(&TopologyConfig::small(8)));
        let stub = (0..topo.num_ases())
            .map(|i| AsIdx(i as u32))
            .find(|&i| topo.as_info(i).tier == Tier::Stub)
            .expect("stub");
        let mut events = Vec::new();
        for n in &topo.as_info(stub).neighbors {
            events.push(Event { time: Timestamp(100), kind: EventKind::AdjacencyDown(n.adj) });
            events.push(Event { time: Timestamp(200), kind: EventKind::AdjacencyUp(n.adj) });
        }
        let mut e = Engine::new(Arc::clone(&topo), &EngineConfig { seed: 8, num_vps: 6 }, events);
        let ups = e.advance_to(Timestamp(150));
        let withdrawn = ups
            .iter()
            .filter(|u| !u.is_announce() && topo.as_info(stub).block.covers(u.prefix))
            .count();
        assert!(withdrawn > 0, "expected withdrawals for partitioned stub");
        let ups2 = e.advance_to(Timestamp(300));
        let reann = ups2
            .iter()
            .filter(|u| u.is_announce() && topo.as_info(stub).block.covers(u.prefix))
            .count();
        assert!(reann > 0, "expected re-announcements after repair");
    }
}
