//! Schedulable event-rate envelopes: sinusoidal diurnal/weekly modulation
//! of a base Poisson event rate, with deterministic per-window count
//! sampling.
//!
//! *The Internet Pendulum* observes that topology churn is strongly
//! periodic — event rates swing with the day and the week rather than
//! holding the flat Poisson rate [`crate::events::EventConfig`] assumes.
//! A [`RateEnvelope`] models that: an instantaneous rate
//!
//! ```text
//! rate(t) = base · (1 + a_d·sin(2π(t−φ)/day) + a_w·sin(2π(t−φ)/week))
//! ```
//!
//! (events/day, `a_d + a_w ≤ 1` so the rate never goes negative) and a
//! closed-form integral over any window, so the expected event count in a
//! window needs no numeric quadrature. Per-window counts are drawn from a
//! Poisson with that expectation using a counter-hashed uniform stream:
//! the draw for window `w` is a pure function of `(key, w)`, independent
//! of how many draws happened before it — which is what lets a lazy world
//! sample window 500 without generating windows 0..499.

const DAY: f64 = 86_400.0;
const WEEK: f64 = 7.0 * DAY;

/// A sinusoidally modulated event-rate schedule (events per day).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateEnvelope {
    /// Mean rate, events per day.
    pub base_per_day: f64,
    /// Diurnal swing as a fraction of the base (0 = flat).
    pub diurnal: f64,
    /// Weekly swing as a fraction of the base (0 = flat).
    pub weekly: f64,
    /// Phase offset in seconds (shifts both periods together).
    pub phase_secs: f64,
}

impl RateEnvelope {
    /// A flat envelope: plain Poisson at `base_per_day`.
    pub fn flat(base_per_day: f64) -> Self {
        RateEnvelope { base_per_day, diurnal: 0.0, weekly: 0.0, phase_secs: 0.0 }
    }

    /// A periodic envelope. `diurnal + weekly` must stay within 1 so the
    /// instantaneous rate is never negative (which would break the
    /// closed-form integral).
    pub fn periodic(base_per_day: f64, diurnal: f64, weekly: f64, phase_secs: f64) -> Self {
        assert!(base_per_day >= 0.0, "rate must be non-negative");
        assert!(diurnal >= 0.0 && weekly >= 0.0, "amplitudes must be non-negative");
        assert!(diurnal + weekly <= 1.0, "amplitudes must sum to <= 1 (non-negative rate)");
        RateEnvelope { base_per_day, diurnal, weekly, phase_secs }
    }

    /// Instantaneous rate at `t` seconds, in events per day.
    pub fn rate_at(&self, t_secs: u64) -> f64 {
        let t = t_secs as f64 - self.phase_secs;
        let d = (2.0 * std::f64::consts::PI * t / DAY).sin();
        let w = (2.0 * std::f64::consts::PI * t / WEEK).sin();
        self.base_per_day * (1.0 + self.diurnal * d + self.weekly * w)
    }

    /// Expected event count in `[start, start + len)` seconds — the exact
    /// integral of [`RateEnvelope::rate_at`] over the window.
    pub fn expected_in(&self, start_secs: u64, len_secs: u64) -> f64 {
        let s = start_secs as f64 - self.phase_secs;
        let e = s + len_secs as f64;
        // ∫ sin(2πt/P) dt over [s, e] = P/2π · (cos(2πs/P) − cos(2πe/P))
        let sine_integral = |p: f64| {
            let k = 2.0 * std::f64::consts::PI / p;
            ((k * s).cos() - (k * e).cos()) / k
        };
        let flat = len_secs as f64;
        let per_sec = self.base_per_day / DAY;
        per_sec * (flat + self.diurnal * sine_integral(DAY) + self.weekly * sine_integral(WEEK))
    }

    /// Deterministic Poisson draw for one window: the count for
    /// `(key, start)` is a pure function of those values and the envelope,
    /// independent of draw order.
    pub fn sample_in(&self, key: u64, start_secs: u64, len_secs: u64) -> u32 {
        poisson_draw(mix64(key ^ mix64(start_secs)), self.expected_in(start_secs, len_secs))
    }
}

/// SplitMix64 finalizer: the hash behind every derived draw, chosen for
/// full avalanche at one multiply-xor round cost.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform in [0, 1) from the top 53 bits of a hash.
fn u01(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Knuth's product-of-uniforms Poisson sampler over a counter-hashed
/// uniform stream. Exact for the small per-window expectations envelopes
/// produce (λ ≲ 50; `exp(−λ)` underflows f64 only past λ ≈ 700).
fn poisson_draw(seed: u64, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let floor = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    let mut ctr = seed;
    loop {
        ctr = mix64(ctr);
        p *= u01(ctr);
        if p <= floor || k >= 100_000 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_envelope_integrates_linearly() {
        let e = RateEnvelope::flat(96.0); // one event per 900 s window
        assert!((e.expected_in(0, 900) - 1.0).abs() < 1e-9);
        assert!((e.expected_in(12_345, 86_400) - 96.0).abs() < 1e-9);
    }

    #[test]
    fn diurnal_rate_is_periodic_and_nonnegative() {
        let e = RateEnvelope::periodic(100.0, 0.8, 0.0, 3_600.0);
        for t in (0..86_400).step_by(600) {
            let r = e.rate_at(t as u64);
            assert!(r >= 0.0, "rate({t}) = {r}");
            assert!((r - e.rate_at(t as u64 + 86_400)).abs() < 1e-6, "period at t={t}");
        }
        // Peak-to-trough swing actually shows up.
        let rates: Vec<f64> = (0..96).map(|w| e.rate_at(w * 900)).collect();
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 150.0 && min < 50.0, "max {max} min {min}");
    }

    #[test]
    fn integral_matches_numeric_quadrature() {
        let e = RateEnvelope::periodic(120.0, 0.5, 0.3, 7_000.0);
        let (start, len) = (40_000u64, 900u64);
        let numeric: f64 = (0..len).map(|s| e.rate_at(start + s) / 86_400.0).sum::<f64>();
        let closed = e.expected_in(start, len);
        assert!((numeric - closed).abs() < 1e-3, "numeric {numeric} vs closed {closed}");
    }

    #[test]
    fn window_draws_are_deterministic_and_order_free() {
        let e = RateEnvelope::periodic(200.0, 0.6, 0.2, 0.0);
        let forward: Vec<u32> = (0..50).map(|w| e.sample_in(7, w * 900, 900)).collect();
        let backward: Vec<u32> = (0..50).rev().map(|w| e.sample_in(7, w * 900, 900)).collect();
        let mut backward = backward;
        backward.reverse();
        assert_eq!(forward, backward);
        assert_ne!(
            forward,
            (0..50).map(|w| e.sample_in(8, w * 900, 900)).collect::<Vec<_>>(),
            "different keys draw different streams"
        );
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let e = RateEnvelope::flat(96.0 * 3.0); // λ = 3 per window
        let n = 2_000u64;
        let total: u64 = (0..n).map(|w| e.sample_in(11, w * 900, 900) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.2, "empirical mean {mean}");
    }
}
