//! Mutable overlay on the immutable topology: link availability, IGP cost
//! biases, policy salts, TE communities, and IXP membership activation.

use rrr_topology::{AdjacencyId, AsIdx, Topology};
use rrr_types::{Community, IxpId, PeeringPointId};
use std::collections::{HashMap, HashSet};

/// Dynamic network state. Owned by the engine; read by routing, attribute
/// computation, and the data plane.
#[derive(Debug, Clone)]
pub struct NetState {
    /// Per peering point: is the physical session up?
    pub point_up: Vec<bool>,
    /// Per adjacency: has it been activated (latent adjacencies start
    /// inactive)?
    pub adj_active: Vec<bool>,
    /// Per peering point: current IGP cost bias on each side (replaces the
    /// static `bias_a`/`bias_b` once mutated).
    pub bias_a: Vec<u32>,
    pub bias_b: Vec<u32>,
    /// Monotonic counter per AS, bumped by AS-wide internal churn (IGP
    /// wobble); feeds the duplicate-update signature.
    pub wobble_epoch: Vec<u64>,
    /// Monotonic counter per peering point, bumped when that point's IGP
    /// bias/MED changes; routes whose egress chain crosses the point get
    /// re-signed (duplicates scoped to affected routes).
    pub point_epoch: Vec<u64>,
    /// Tiebreak salts: (chooser AS, origin AS) → salt permuting the choice
    /// among equally-preferred routes (policy flips).
    pub tiebreak_salt: HashMap<(AsIdx, AsIdx), u64>,
    /// Traffic-engineering communities each AS currently attaches to all
    /// routes it propagates (path-unrelated noise; Fig 13's pruning target).
    pub te_communities: Vec<HashSet<Community>>,
    /// IXP memberships activated after t0 (AS, IXP) — the ground truth the
    /// §4.2.3 technique tries to discover via traceroutes.
    pub activated_memberships: Vec<(AsIdx, IxpId)>,
}

impl NetState {
    /// Initial state: every non-latent adjacency active, every point of an
    /// active adjacency up, biases at their static values.
    pub fn new(topo: &Topology) -> Self {
        NetState {
            point_up: vec![true; topo.points.len()],
            adj_active: topo.adjacencies.iter().map(|a| !a.latent).collect(),
            bias_a: topo.points.iter().map(|p| p.bias_a).collect(),
            bias_b: topo.points.iter().map(|p| p.bias_b).collect(),
            wobble_epoch: vec![0; topo.num_ases()],
            point_epoch: vec![0; topo.points.len()],
            tiebreak_salt: HashMap::new(),
            te_communities: vec![HashSet::new(); topo.num_ases()],
            activated_memberships: Vec::new(),
        }
    }

    /// Whether an adjacency currently carries sessions: it must be active
    /// and have at least one point up.
    pub fn adj_usable(&self, topo: &Topology, adj: AdjacencyId) -> bool {
        self.adj_active[adj.index()]
            && topo.adjacency(adj).points.iter().any(|p| self.point_up[p.index()])
    }

    /// Up points of an adjacency.
    pub fn up_points<'a>(
        &'a self,
        topo: &'a Topology,
        adj: AdjacencyId,
    ) -> impl Iterator<Item = PeeringPointId> + 'a {
        topo.adjacency(adj).points.iter().copied().filter(move |p| self.point_up[p.index()])
    }

    /// Current bias of a point as seen from AS `side_of` (must be one of the
    /// adjacency endpoints).
    pub fn bias_for(&self, topo: &Topology, point: PeeringPointId, side_of: AsIdx) -> u32 {
        let p = topo.point(point);
        let adj = topo.adjacency(p.adj);
        if adj.a == side_of {
            self.bias_a[point.index()]
        } else {
            debug_assert_eq!(adj.b, side_of);
            self.bias_b[point.index()]
        }
    }

    /// Salt for tiebreaks of `chooser` routing toward `origin`.
    pub fn salt(&self, chooser: AsIdx, origin: AsIdx) -> u64 {
        self.tiebreak_salt.get(&(chooser, origin)).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrr_topology::{generate, TopologyConfig};

    #[test]
    fn initial_state_matches_topology() {
        let topo = generate(&TopologyConfig::small(3));
        let st = NetState::new(&topo);
        assert_eq!(st.point_up.len(), topo.points.len());
        // Latent adjacencies start inactive, others active.
        for adj in &topo.adjacencies {
            assert_eq!(st.adj_active[adj.id.index()], !adj.latent);
            if !adj.latent {
                assert!(st.adj_usable(&topo, adj.id));
            } else {
                assert!(!st.adj_usable(&topo, adj.id));
            }
        }
    }

    #[test]
    fn bias_sides() {
        let topo = generate(&TopologyConfig::small(3));
        let st = NetState::new(&topo);
        let p = &topo.points[0];
        let adj = topo.adjacency(p.adj);
        assert_eq!(st.bias_for(&topo, p.id, adj.a), p.bias_a);
        assert_eq!(st.bias_for(&topo, p.id, adj.b), p.bias_b);
    }

    #[test]
    fn adj_unusable_when_all_points_down() {
        let topo = generate(&TopologyConfig::small(3));
        let mut st = NetState::new(&topo);
        let adj = topo.adjacencies.iter().find(|a| !a.latent).expect("active adjacency");
        for p in &adj.points {
            st.point_up[p.index()] = false;
        }
        assert!(!st.adj_usable(&topo, adj.id));
    }
}
