//! BGP control-plane simulation: Gao–Rexford policy routing over an
//! `rrr-topology` graph, a dynamic event model, and per-vantage-point update
//! streams mimicking what RouteViews / RIPE RIS collectors expose.
//!
//! The engine is built so that every phenomenon the paper's §4.1 techniques
//! exploit arises organically:
//!
//! - **AS-path changes** from link/adjacency failures and policy tiebreak
//!   flips (§4.1.2),
//! - **community changes with an unchanged AS path** when hot-potato egress
//!   selection moves an interconnection to a different city (§4.1.3,
//!   Figure 3),
//! - **duplicate updates** when non-transitive attributes (IGP costs, MED)
//!   change without touching path or communities (§4.1.4),
//! - **IXP joins** activating latent peerings (§4.2.3).
//!
//! Routing is recomputed deterministically; the data plane (`rrr-trace`)
//! shares the same route table and egress-selection function, so control-
//! and data-plane observations are mutually consistent — the property the
//! paper's cross-stream correlation relies on.

pub mod attrs;
pub mod engine;
pub mod envelope;
pub mod events;
pub mod routing;
pub mod state;

pub use attrs::{route_attrs, RouteAttrs};
pub use engine::{Engine, EngineConfig, VantagePoint};
pub use envelope::{mix64, RateEnvelope};
pub use events::{generate_events, Event, EventConfig, EventKind};
pub use routing::{compute_routes, egress_points, RouteClass, RouteEntry, RouteTable};
pub use state::NetState;
