//! Degenerate-input coverage for both outlier detectors: empty series,
//! constant series, and single-sample windows must never panic and must
//! never produce spurious outliers. These are exactly the shapes a lossy or
//! bursty measurement feed produces (a vantage point going quiet leaves an
//! empty or constant series; a freshly registered monitor judges its first
//! sample against a one-element history).

use rrr_anomaly::{BitmapDetector, ModifiedZScore, OutlierDetector};

// --- empty series ---

#[test]
fn bitmap_empty_series_no_panic_no_outlier() {
    for d in [BitmapDetector::default(), BitmapDetector::spike()] {
        assert!(d.discretize(&[]).is_empty());
        assert_eq!(d.lead_lag_score(&[]), None);
        assert!(d.score_series(&[]).is_empty());
        assert!(!d.is_outlier(&[], 0.0));
        assert!(!d.is_outlier(&[], 1e9));
        assert_eq!(d.score(&[], 42.0), 0.0);
    }
}

#[test]
fn zscore_empty_history_no_panic_no_outlier() {
    let d = ModifiedZScore::default();
    assert_eq!(d.zscore(&[], 7.0), None);
    assert!(!d.is_outlier(&[], 7.0));
    assert_eq!(d.score(&[], 7.0), 0.0);
    // Even with the history gate disabled the empty case must stay safe.
    let eager = ModifiedZScore { min_history: 0, ..ModifiedZScore::default() };
    assert!(!eager.is_outlier(&[], 7.0));
    assert_eq!(eager.score(&[], 7.0), 0.0);
}

// --- constant series ---

#[test]
fn bitmap_constant_series_never_flags_any_level() {
    for level in [-3.5, 0.0, 0.25, 1.0, 1e6] {
        for n in [1usize, 2, 8, 40] {
            let hist = vec![level; n];
            let d = BitmapDetector::default();
            assert!(!d.is_outlier(&hist, level), "level {level}, n {n}");
            let s = BitmapDetector::spike();
            assert!(!s.is_outlier(&hist, level), "spike at level {level}, n {n}");
        }
    }
}

#[test]
fn zscore_constant_series_tolerates_sub_threshold_wiggle() {
    let d = ModifiedZScore::default();
    for n in [8usize, 9, 20, 41] {
        let hist = vec![2.0; n];
        assert!(!d.is_outlier(&hist, 2.0), "n {n}");
        assert!(!d.is_outlier(&hist, 2.0 + d.min_deviation * 0.9), "n {n}");
        assert!(d.is_outlier(&hist, 2.0 + d.min_deviation * 2.0), "n {n}");
        // Scores stay finite-or-infinite without NaN.
        assert!(!d.score(&hist, 2.0).is_nan());
        assert!(!d.score(&hist, 3.0).is_nan());
    }
}

// --- single-sample windows ---

#[test]
fn bitmap_single_sample_windows_no_panic() {
    // lag = lead = 1: the smallest windows the detector accepts. Both the
    // two-sample minimum series and longer ones must behave.
    let d = BitmapDetector { lag: 1, lead: 1, word_len: 1, alphabet: 4, threshold: 1.0 };
    assert_eq!(d.lead_lag_score(&[1.0]), None, "one sample cannot fill lag+lead");
    let s = d.lead_lag_score(&[1.0, 1.0]).expect("two samples fill 1+1");
    assert!(s.is_finite() && s >= 0.0);
    assert!(!d.is_outlier(&[1.0], 1.0));
    // A genuinely different pair of samples scores high but stays bounded.
    let s = d.lead_lag_score(&[0.0, 100.0]).expect("eligible");
    assert!((0.0..=2.0 + 1e-9).contains(&s));
}

#[test]
fn bitmap_word_longer_than_window_is_benign() {
    // word_len exceeds both windows: no subwords exist, bitmaps are all
    // zeros, and the distance collapses to 0 rather than panicking.
    let d = BitmapDetector { lag: 1, lead: 1, word_len: 2, alphabet: 4, threshold: 0.5 };
    let s = d.lead_lag_score(&[1.0, 5.0]).expect("eligible");
    assert_eq!(s, 0.0);
    assert!(!d.is_outlier(&[1.0], 5.0));
}

#[test]
fn zscore_single_sample_history_no_panic() {
    let d = ModifiedZScore { min_history: 1, ..ModifiedZScore::default() };
    // One identical sample: degenerate (MAD and meanAD both zero).
    assert!(!d.is_outlier(&[5.0], 5.0));
    assert!(d.is_outlier(&[5.0], 6.0), "constant-fallback must still judge");
    assert_eq!(d.zscore(&[5.0], 6.0), None);
    assert!(!d.score(&[5.0], 5.0).is_nan());
}

#[test]
fn zscore_two_sample_history_no_spurious_flags() {
    let d = ModifiedZScore { min_history: 2, ..ModifiedZScore::default() };
    // Two distinct samples: MAD is positive, in-range candidates pass.
    assert!(!d.is_outlier(&[1.0, 2.0], 1.5));
    let z = d.zscore(&[1.0, 2.0], 1.5).expect("non-degenerate");
    assert!(z.is_finite());
}
