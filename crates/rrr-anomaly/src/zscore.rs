//! The Iglewicz–Hoaglin modified z-score detector.

use crate::OutlierDetector;

/// Modified z-score: `M = 0.6745 (x - median) / MAD`, flagging `|M| > 3.5`
/// by default. When the MAD is zero (more than half the history identical),
/// falls back to the mean absolute deviation (`M = (x - median) /
/// (1.253314 · meanAD)`); when that is also zero, any deviation from the
/// (constant) history is an outlier.
#[derive(Debug, Clone, Copy)]
pub struct ModifiedZScore {
    /// |M| above this is an outlier. The literature default is 3.5.
    pub threshold: f64,
    /// Minimum history length before judging.
    pub min_history: usize,
    /// With a perfectly constant history (both MAD and meanAD zero), a
    /// candidate must deviate by more than this absolute amount to count —
    /// keeps a single stray observation in an otherwise-degenerate ratio
    /// series from firing.
    pub min_deviation: f64,
}

impl Default for ModifiedZScore {
    fn default() -> Self {
        ModifiedZScore { threshold: 3.5, min_history: 8, min_deviation: 0.05 }
    }
}

impl rrr_store::Persist for ModifiedZScore {
    fn store<W: std::io::Write>(
        &self,
        e: &mut rrr_store::Encoder<W>,
    ) -> Result<(), rrr_store::StoreError> {
        self.threshold.store(e)?;
        self.min_history.store(e)?;
        self.min_deviation.store(e)
    }
    fn load<R: std::io::Read>(
        d: &mut rrr_store::Decoder<R>,
    ) -> Result<Self, rrr_store::StoreError> {
        Ok(ModifiedZScore {
            threshold: rrr_store::Persist::load(d)?,
            min_history: rrr_store::Persist::load(d)?,
            min_deviation: rrr_store::Persist::load(d)?,
        })
    }
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

impl ModifiedZScore {
    /// The modified z-score of `candidate` against `history`, or `None`
    /// when the history is degenerate (constant) — in which case any
    /// deviation at all is anomalous. An empty history is degenerate too:
    /// there is no median to deviate from, so the answer is `None` rather
    /// than a panic.
    pub fn zscore(&self, history: &[f64], candidate: f64) -> Option<f64> {
        if history.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = history.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let med = median(&sorted);
        let mut devs: Vec<f64> = history.iter().map(|x| (x - med).abs()).collect();
        devs.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let mad = median(&devs);
        if mad > f64::EPSILON {
            return Some(0.6745 * (candidate - med) / mad);
        }
        let mean_ad = devs.iter().sum::<f64>() / devs.len() as f64;
        if mean_ad > f64::EPSILON {
            return Some((candidate - med) / (1.253_314 * mean_ad));
        }
        None
    }
}

impl OutlierDetector for ModifiedZScore {
    fn is_outlier(&self, history: &[f64], candidate: f64) -> bool {
        if history.len() < self.min_history {
            return false;
        }
        match self.zscore(history, candidate) {
            Some(m) => m.abs() > self.threshold,
            // Constant history: meaningful deviation is anomalous. An empty
            // history has nothing to deviate from — never an outlier.
            None => history.first().is_some_and(|h| (candidate - h).abs() > self.min_deviation),
        }
    }

    fn score(&self, history: &[f64], candidate: f64) -> f64 {
        if history.len() < self.min_history {
            return 0.0;
        }
        match self.zscore(history, candidate) {
            Some(m) => m.abs(),
            None => {
                let deviates =
                    history.first().is_some_and(|h| (candidate - h).abs() > self.min_deviation);
                if deviates {
                    f64::INFINITY
                } else {
                    0.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_clear_outlier() {
        let d = ModifiedZScore::default();
        let hist: Vec<f64> = (0..20).map(|i| 1.0 + 0.01 * (i % 3) as f64).collect();
        assert!(d.is_outlier(&hist, 0.2));
        assert!(d.is_outlier(&hist, 2.0));
        assert!(!d.is_outlier(&hist, 1.01));
    }

    #[test]
    fn constant_history_fallback() {
        let d = ModifiedZScore::default();
        let hist = vec![0.5; 20];
        assert!(!d.is_outlier(&hist, 0.5));
        assert!(d.is_outlier(&hist, 0.6));
        assert_eq!(d.score(&hist, 0.5), 0.0);
        assert!(d.score(&hist, 0.6).is_infinite());
        // Sub-min_deviation wiggle is tolerated.
        assert!(!d.is_outlier(&hist, 0.52));
    }

    #[test]
    fn mad_zero_meanad_nonzero() {
        // Majority identical (MAD 0) but some deviation: meanAD fallback.
        let mut hist = vec![1.0; 15];
        hist.extend_from_slice(&[1.4, 0.6, 1.2, 0.8]);
        let d = ModifiedZScore::default();
        assert!(d.is_outlier(&hist, 5.0));
        assert!(!d.is_outlier(&hist, 1.0));
    }

    #[test]
    fn too_short_history_never_flags() {
        let d = ModifiedZScore::default();
        assert!(!d.is_outlier(&[1.0, 2.0], 100.0));
        assert_eq!(d.score(&[1.0, 2.0], 100.0), 0.0);
    }

    #[test]
    fn score_monotone_in_deviation() {
        let d = ModifiedZScore::default();
        let hist: Vec<f64> = (0..30).map(|i| (i % 5) as f64).collect();
        assert!(d.score(&hist, 50.0) > d.score(&hist, 10.0));
        assert!(d.score(&hist, 10.0) > d.score(&hist, 2.0));
    }

    #[test]
    fn symmetric() {
        let d = ModifiedZScore::default();
        let hist: Vec<f64> = (0..30).map(|i| (i % 5) as f64 - 2.0).collect();
        let hi = d.score(&hist, 10.0);
        let lo = d.score(&hist, -10.0);
        assert!((hi - lo).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::OutlierDetector;
    use proptest::prelude::*;

    proptest! {
        /// The detector is translation-invariant: shifting history and
        /// candidate together preserves the verdict.
        #[test]
        fn translation_invariant(
            hist in proptest::collection::vec(-10.0f64..10.0, 10..40),
            cand in -10.0f64..10.0,
            shift in -100.0f64..100.0,
        ) {
            let d = ModifiedZScore::default();
            let shifted: Vec<f64> = hist.iter().map(|x| x + shift).collect();
            prop_assert_eq!(
                d.is_outlier(&hist, cand),
                d.is_outlier(&shifted, cand + shift)
            );
        }

        /// Values drawn from within the history's own range are never
        /// flagged when the spread is healthy (MAD comparable to range).
        #[test]
        fn in_range_of_uniformish_history_ok(seedv in 0u64..1000) {
            // Deterministic pseudo-random history with real spread.
            let hist: Vec<f64> = (0..40)
                .map(|i| ((seedv.wrapping_mul(6364136223846793005).wrapping_add(i * 2654435761)) % 1000) as f64 / 1000.0)
                .collect();
            let d = ModifiedZScore::default();
            let median = {
                let mut s = hist.clone();
                s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                s[s.len() / 2]
            };
            prop_assert!(!d.is_outlier(&hist, median));
        }

        /// Monotone: a candidate farther from the median never scores lower.
        #[test]
        fn monotone_in_distance(
            hist in proptest::collection::vec(0.0f64..1.0, 10..40),
            a in 2.0f64..10.0,
            b in 10.0f64..100.0,
        ) {
            let d = ModifiedZScore::default();
            prop_assert!(d.score(&hist, b) >= d.score(&hist, a) - 1e-9);
        }
    }
}
