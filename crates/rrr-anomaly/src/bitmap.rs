//! The assumption-free "chaos-game bitmap" anomaly detector of Wei, Kumar,
//! Lolla, Keogh, Lonardi & Ratanamahatana (SSDBM 2005).
//!
//! The series is SAX-discretized into a small alphabet; a *lag* window (the
//! recent past) and a *lead* window (the newest values) are each summarized
//! by the frequency bitmap of their length-`L` subwords; the anomaly score
//! is the squared distance between the two normalized bitmaps. A large
//! distance means the newest values' local structure does not look like the
//! recent past.

use crate::OutlierDetector;

/// Chaos-game bitmap detector.
#[derive(Debug, Clone, Copy)]
pub struct BitmapDetector {
    /// Alphabet size for SAX discretization (the paper's authors recommend
    /// 4; cells beyond 8 explode the bitmap).
    pub alphabet: usize,
    /// Subword (feature) length; bitmap has `alphabet^word_len` cells.
    pub word_len: usize,
    /// Lag window length (history summarized).
    pub lag: usize,
    /// Lead window length (newest values summarized, including the
    /// candidate).
    pub lead: usize,
    /// Scores above this are outliers. Scores are normalized to `[0, 2]`
    /// (squared distance of two L1-normalized frequency vectors is at most
    /// 2 when they are disjoint).
    pub threshold: f64,
}

impl Default for BitmapDetector {
    fn default() -> Self {
        BitmapDetector { alphabet: 4, word_len: 2, lag: 16, lead: 4, threshold: 0.9 }
    }
}

impl BitmapDetector {
    /// A spike-sensitive parameterization: the lead window is the single
    /// newest value and features are level-1 (symbol histogram), so a value
    /// whose discretized symbol is rare in the lag window scores high. This
    /// is the right shape for the paper's per-window BGP series, where a
    /// change shows up as a one-window spike or dip (duplicate-update
    /// bursts, ratio collapses).
    pub fn spike() -> Self {
        BitmapDetector { alphabet: 4, word_len: 1, lag: 16, lead: 1, threshold: 1.0 }
    }

    /// The trailing-run length after which a series is *inert* under a
    /// constant: with at least this many history values bit-identical to
    /// the candidate, the full lag+lead tail is constant, every symbol
    /// discretizes identically, both bitmaps coincide, and the score is
    /// exactly 0 — which a non-negative threshold never flags. `None` when
    /// the threshold is negative (then even a zero score is an outlier, so
    /// no constant tail is safe).
    pub fn inert_tail(&self) -> Option<usize> {
        (self.threshold >= 0.0).then_some(self.lag + self.lead - 1)
    }
}

impl rrr_store::Persist for BitmapDetector {
    fn store<W: std::io::Write>(
        &self,
        e: &mut rrr_store::Encoder<W>,
    ) -> Result<(), rrr_store::StoreError> {
        self.alphabet.store(e)?;
        self.word_len.store(e)?;
        self.lag.store(e)?;
        self.lead.store(e)?;
        self.threshold.store(e)
    }
    fn load<R: std::io::Read>(
        d: &mut rrr_store::Decoder<R>,
    ) -> Result<Self, rrr_store::StoreError> {
        Ok(BitmapDetector {
            alphabet: rrr_store::Persist::load(d)?,
            word_len: rrr_store::Persist::load(d)?,
            lag: rrr_store::Persist::load(d)?,
            lead: rrr_store::Persist::load(d)?,
            threshold: rrr_store::Persist::load(d)?,
        })
    }
}

/// Breakpoints dividing N(0,1) into equiprobable regions, for alphabet
/// sizes 2..=6 (standard SAX tables).
fn sax_breakpoints(alphabet: usize) -> &'static [f64] {
    match alphabet {
        2 => &[0.0],
        3 => &[-0.43, 0.43],
        4 => &[-0.6745, 0.0, 0.6745],
        5 => &[-0.84, -0.25, 0.25, 0.84],
        6 => &[-0.97, -0.43, 0.0, 0.43, 0.97],
        _ => panic!("unsupported alphabet size {alphabet} (use 2..=6)"),
    }
}

impl BitmapDetector {
    /// SAX-discretizes a series: z-normalize then bucket by breakpoints.
    /// A constant series maps entirely to symbol 0.
    pub fn discretize(&self, series: &[f64]) -> Vec<u8> {
        let n = series.len();
        if n == 0 {
            return Vec::new();
        }
        let mean = series.iter().sum::<f64>() / n as f64;
        let var = series.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let std = var.sqrt();
        let bps = sax_breakpoints(self.alphabet);
        series
            .iter()
            .map(|&x| {
                if std < 1e-12 {
                    return 0u8;
                }
                let z = (x - mean) / std;
                bps.iter().take_while(|&&b| z > b).count() as u8
            })
            .collect()
    }

    /// Frequency bitmap of all length-`word_len` subwords, L1-normalized.
    fn bitmap(&self, symbols: &[u8]) -> Vec<f64> {
        let cells = self.alphabet.pow(self.word_len as u32);
        let mut counts = vec![0.0f64; cells];
        if symbols.len() < self.word_len {
            return counts;
        }
        for w in symbols.windows(self.word_len) {
            let mut idx = 0usize;
            for &s in w {
                idx = idx * self.alphabet + s as usize;
            }
            counts[idx] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        if total > 0.0 {
            for c in counts.iter_mut() {
                *c /= total;
            }
        }
        counts
    }

    /// The anomaly score of the newest `lead` values of `series` against
    /// the preceding `lag` values. `None` when the series is too short.
    pub fn lead_lag_score(&self, series: &[f64]) -> Option<f64> {
        let need = self.lag + self.lead;
        if series.len() < need {
            return None;
        }
        let tail = &series[series.len() - need..];
        // Discretize lag+lead jointly so both windows share breakpoints.
        let symbols = self.discretize(tail);
        let (lag_syms, lead_syms) = symbols.split_at(self.lag);
        let a = self.bitmap(lag_syms);
        let b = self.bitmap(lead_syms);
        Some(a.iter().zip(&b).map(|(x, y)| (x - y).powi(2)).sum())
    }
}

impl BitmapDetector {
    /// Only the trailing lag+lead values feed [`Self::lead_lag_score`], so
    /// copy just those instead of the whole (up to 256-value) history.
    fn tail_with(&self, history: &[f64], candidate: f64) -> Vec<f64> {
        let keep = history.len().min((self.lag + self.lead).saturating_sub(1));
        let mut series = Vec::with_capacity(keep + 1);
        series.extend_from_slice(&history[history.len() - keep..]);
        series.push(candidate);
        series
    }
}

impl OutlierDetector for BitmapDetector {
    fn is_outlier(&self, history: &[f64], candidate: f64) -> bool {
        match self.lead_lag_score(&self.tail_with(history, candidate)) {
            Some(s) => s > self.threshold,
            None => false,
        }
    }

    fn score(&self, history: &[f64], candidate: f64) -> f64 {
        self.lead_lag_score(&self.tail_with(history, candidate)).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> BitmapDetector {
        BitmapDetector::default()
    }

    #[test]
    fn discretize_monotone() {
        let d = detector();
        let syms = d.discretize(&[-2.0, -0.5, 0.5, 2.0]);
        // Symbols must be non-decreasing with the values.
        for w in syms.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(syms.iter().all(|&s| (s as usize) < d.alphabet));
    }

    #[test]
    fn constant_series_not_anomalous() {
        let d = detector();
        let hist = vec![0.8; 30];
        assert!(!d.is_outlier(&hist, 0.8));
    }

    #[test]
    fn level_shift_detected() {
        let d = detector();
        // Stable ratio near 1.0 for a long time, then a collapse to 0.
        let mut hist: Vec<f64> = (0..40).map(|i| 0.95 + 0.01 * ((i % 4) as f64)).collect();
        assert!(!d.is_outlier(&hist, 0.96), "in-distribution value flagged");
        // Push the shift into the lead window.
        hist.extend_from_slice(&[0.0, 0.0, 0.0]);
        assert!(d.is_outlier(&hist, 0.0), "level shift missed");
    }

    #[test]
    fn noise_not_flagged_shift_flagged() {
        let d = detector();
        // alternating-ish but stationary noise
        let hist: Vec<f64> =
            (0..60).map(|i| 0.5 + 0.05 * ((i * 7 % 11) as f64 / 11.0 - 0.5)).collect();
        assert!(!d.is_outlier(&hist, 0.52));
        let mut shifted = hist.clone();
        shifted.extend_from_slice(&[1.5, 1.5, 1.5]);
        assert!(d.is_outlier(&shifted, 1.5));
    }

    #[test]
    fn score_increases_with_structural_difference() {
        let d = detector();
        let base: Vec<f64> = (0..40).map(|i| (i % 2) as f64).collect();
        let mild = d.score(&base, 1.0);
        let mut broken = base.clone();
        broken.extend_from_slice(&[5.0, 5.0, 5.0]);
        let severe = d.score(&broken, 5.0);
        assert!(severe > mild, "severe {severe} <= mild {mild}");
    }

    #[test]
    fn spike_preset_flags_single_window_events() {
        let d = BitmapDetector::spike();
        // Constant-zero history (a quiet duplicate-update counter), then a
        // burst of 2 in one window.
        let hist = vec![0.0; 30];
        assert!(d.is_outlier(&hist, 2.0), "single-window burst missed");
        assert!(!d.is_outlier(&hist, 0.0));
        // Ratio series pinned at 1.0, collapsing once.
        let hist = vec![1.0; 30];
        assert!(d.is_outlier(&hist, 0.0));
        // Bimodal but stationary noise is tolerated.
        let hist: Vec<f64> = (0..30).map(|i| if i % 2 == 0 { 0.4 } else { 0.6 }).collect();
        assert!(!d.is_outlier(&hist, 0.4));
        assert!(!d.is_outlier(&hist, 0.6));
    }

    #[test]
    fn too_short_never_flags() {
        let d = detector();
        assert!(!d.is_outlier(&[1.0; 5], 100.0));
        assert_eq!(d.lead_lag_score(&[1.0; 5]), None);
    }

    #[test]
    fn bitmap_cells_and_normalization() {
        let d = detector();
        let syms = vec![0u8, 1, 2, 3, 0, 1, 2, 3];
        let bm = d.bitmap(&syms);
        assert_eq!(bm.len(), 16);
        let sum: f64 = bm.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn oversized_alphabet_panics() {
        let d = BitmapDetector { alphabet: 9, ..Default::default() };
        let _ = d.discretize(&[1.0, 2.0]);
    }
}

/// Offline sliding scorer: the lead/lag anomaly score at every eligible
/// index of a series (useful for post-hoc analysis and plotting; the online
/// pipeline uses [`crate::MonitoredSeries`] instead).
impl BitmapDetector {
    pub fn score_series(&self, series: &[f64]) -> Vec<Option<f64>> {
        (0..series.len()).map(|i| self.lead_lag_score(&series[..=i])).collect()
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::OutlierDetector;
    use proptest::prelude::*;

    proptest! {
        /// Scores are finite and bounded by 2 (squared distance of two
        /// L1-normalized vectors), for arbitrary finite series.
        #[test]
        fn scores_bounded(series in proptest::collection::vec(-100.0f64..100.0, 0..80)) {
            let d = BitmapDetector::default();
            for s in d.score_series(&series).into_iter().flatten() {
                prop_assert!(s.is_finite());
                prop_assert!((0.0..=2.0 + 1e-9).contains(&s));
            }
        }

        /// Shifting and scaling a series never changes its discretization
        /// (z-normalization invariance), hence not its scores.
        #[test]
        fn affine_invariance(
            series in proptest::collection::vec(-10.0f64..10.0, 24..48),
            shift in -50.0f64..50.0,
            scale in 0.1f64..10.0,
        ) {
            let d = BitmapDetector::default();
            let transformed: Vec<f64> = series.iter().map(|x| x * scale + shift).collect();
            let a = d.score_series(&series);
            let b = d.score_series(&transformed);
            for (x, y) in a.iter().zip(&b) {
                match (x, y) {
                    (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-6),
                    (None, None) => {}
                    other => prop_assert!(false, "eligibility mismatch {other:?}"),
                }
            }
        }

        /// A constant series never flags, regardless of its level.
        #[test]
        fn constant_never_flags(level in -100.0f64..100.0, n in 21usize..60) {
            let d = BitmapDetector::default();
            let hist = vec![level; n];
            prop_assert!(!d.is_outlier(&hist, level));
            let spike = BitmapDetector::spike();
            prop_assert!(!spike.is_outlier(&hist, level));
        }
    }
}
