//! Time-series outlier detection used by the staleness techniques.
//!
//! Two detectors, matching the paper's choices:
//!
//! - [`BitmapDetector`] — the assumption-free "chaos-game bitmap" detector of
//!   Wei et al. (SSDBM'05), used on BGP-derived series (§4.1.2),
//! - [`ModifiedZScore`] — the Iglewicz–Hoaglin modified z-score, used on the
//!   noisier traceroute-derived series (§4.2.1).
//!
//! Plus the [`MonitoredSeries`] container implementing the paper's series
//! hygiene: missing windows are never outliers, flagged windows are removed
//! to preserve stationarity (so persistent changes keep registering), and a
//! series is only eligible once it has 20 consecutive populated windows.

pub mod bitmap;
pub mod series;
pub mod zscore;

pub use bitmap::BitmapDetector;
pub use series::{choose_window_duration, MonitoredSeries, SeriesVerdict, MIN_WINDOWS};
pub use zscore::ModifiedZScore;

/// A detector decides whether `candidate` is anomalous relative to
/// `history` (oldest first). Implementations must be deterministic.
pub trait OutlierDetector {
    /// `true` when the candidate is an outlier. Detectors should return
    /// `false` when the history is too short to judge.
    fn is_outlier(&self, history: &[f64], candidate: f64) -> bool;

    /// A confidence score (higher = more anomalous); used for tie-breaking
    /// signal priorities (§4.3.1 bootstrap). Default 0.
    fn score(&self, _history: &[f64], _candidate: f64) -> f64 {
        0.0
    }
}
