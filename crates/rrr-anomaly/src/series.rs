//! Monitored time series with the paper's hygiene rules.

use crate::OutlierDetector;
use rrr_types::{Duration, Timestamp, Window, WindowConfig};

/// Minimum consecutive populated windows before a series is eligible for
/// outlier detection (§4.2.1: "widely considered as the minimum recommended
/// number of observations for robust outlier detection").
pub const MIN_WINDOWS: usize = 20;

/// Result of feeding one window into a [`MonitoredSeries`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SeriesVerdict {
    /// The series does not yet have enough consecutive populated windows.
    NotReady,
    /// No data this window; missing values are never outliers (§4.1.2).
    Missing,
    /// In-distribution value, appended to the history.
    Normal,
    /// Outlier. The value is *not* appended, preserving stationarity so a
    /// persistent shift keeps registering as an outlier (§4.1.2).
    Outlier {
        /// Detector score (e.g. |modified z|), for signal prioritization.
        score: f64,
    },
}

impl SeriesVerdict {
    pub fn is_outlier(self) -> bool {
        matches!(self, SeriesVerdict::Outlier { .. })
    }
}

/// A per-key monitored series: accepts one optional value per window,
/// becomes eligible after [`MIN_WINDOWS`] consecutive populated windows,
/// then classifies each new value.
#[derive(Debug, Clone)]
pub struct MonitoredSeries {
    history: Vec<f64>,
    consecutive: usize,
    ready: bool,
    max_history: usize,
    absorb_outliers: bool,
}

impl Default for MonitoredSeries {
    fn default() -> Self {
        MonitoredSeries::new(256)
    }
}

impl MonitoredSeries {
    /// Creates a series keeping at most `max_history` accepted values.
    pub fn new(max_history: usize) -> Self {
        assert!(max_history >= MIN_WINDOWS);
        MonitoredSeries {
            history: Vec::new(),
            consecutive: 0,
            ready: false,
            max_history,
            absorb_outliers: false,
        }
    }

    /// Ablation switch: when `true`, outlier values are appended to the
    /// history instead of being removed — disabling the paper's
    /// stationarity-preservation rule, so persistent changes register only
    /// once (§4.1.2's level-shift discussion).
    pub fn with_absorb_outliers(mut self, absorb: bool) -> Self {
        self.absorb_outliers = absorb;
        self
    }

    /// Whether the eligibility threshold has been reached.
    pub fn ready(&self) -> bool {
        self.ready
    }

    /// Accepted (non-outlier) history, oldest first.
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// The most recent accepted value.
    pub fn last_value(&self) -> Option<f64> {
        self.history.last().copied()
    }

    /// Feeds the value observed in one window.
    pub fn push<D: OutlierDetector>(&mut self, value: Option<f64>, det: &D) -> SeriesVerdict {
        let Some(v) = value else {
            if !self.ready {
                self.consecutive = 0;
            }
            return if self.ready { SeriesVerdict::Missing } else { SeriesVerdict::NotReady };
        };

        if !self.ready {
            self.history.push(v);
            self.consecutive += 1;
            if self.consecutive >= MIN_WINDOWS {
                self.ready = true;
            }
            self.trim();
            return SeriesVerdict::NotReady;
        }

        if det.is_outlier(&self.history, v) {
            let score = det.score(&self.history, v);
            if self.absorb_outliers {
                self.history.push(v);
                self.trim();
            }
            SeriesVerdict::Outlier { score }
        } else {
            self.history.push(v);
            self.trim();
            SeriesVerdict::Normal
        }
    }

    fn trim(&mut self) {
        if self.history.len() > self.max_history {
            let excess = self.history.len() - self.max_history;
            self.history.drain(..excess);
        }
    }

    /// Populated-window run length so far (meaningful while `!ready()`).
    pub fn consecutive(&self) -> usize {
        self.consecutive
    }

    /// Length of the trailing run of history values bit-identical to `v`.
    pub fn trailing_run(&self, v: f64) -> usize {
        self.history.iter().rev().take_while(|x| x.to_bits() == v.to_bits()).count()
    }

    /// Whether feeding `value` into this series any number of further times
    /// is guaranteed to (a) never produce an [`SeriesVerdict::Outlier`] and
    /// (b) evolve the state exactly as [`MonitoredSeries::advance_constant`]
    /// does. `inert_tail` is the detector's guarantee threshold (e.g.
    /// [`BitmapDetector::inert_tail`](crate::BitmapDetector::inert_tail)):
    /// with at least that many trailing history values bit-identical to the
    /// candidate, the detector verdict is `Normal` — which appends the
    /// candidate, keeping the run (and thus the guarantee) intact.
    ///
    /// A `None` value is always inert: it never consults the detector and
    /// at most clears the eligibility counter once.
    pub fn inert_under(&self, value: Option<f64>, inert_tail: Option<usize>) -> bool {
        let Some(v) = value else { return true };
        let Some(need) = inert_tail else { return false };
        let run = self.trailing_run(v);
        if self.ready {
            run >= need
        } else {
            // Every push while `!ready` appends unconditionally; by the
            // time eligibility flips the run has grown by the remaining
            // warmup windows, and the first detector-consulted push needs
            // `need` equal values behind it.
            run + MIN_WINDOWS.saturating_sub(self.consecutive) >= need
        }
    }

    /// Applies `k` consecutive [`MonitoredSeries::push`] calls of the same
    /// `value` in O(min(k, max_history)) without consulting a detector.
    ///
    /// Callers must have established [`MonitoredSeries::inert_under`] for
    /// this value first (or pass `value = None`); otherwise the resulting
    /// state can diverge from `k` real pushes, because real pushes would
    /// have produced `Outlier` verdicts that do not append.
    pub fn advance_constant(&mut self, value: Option<f64>, k: u64) {
        if k == 0 {
            return;
        }
        let Some(v) = value else {
            // Missing windows: no history change; only the warmup run
            // resets, and doing so once is idempotent.
            if !self.ready {
                self.consecutive = 0;
            }
            return;
        };
        let mut k = k as usize;
        if !self.ready {
            let pre = (MIN_WINDOWS - self.consecutive).min(k);
            self.history.extend(std::iter::repeat_n(v, pre));
            self.consecutive += pre;
            if self.consecutive >= MIN_WINDOWS {
                self.ready = true;
            }
            self.trim();
            k -= pre;
            if k == 0 {
                return;
            }
        }
        // Ready: each push is (by the inertness precondition) `Normal`, so
        // the net effect of k pushes is k appends followed by trimming.
        if k >= self.max_history {
            self.history.clear();
            self.history.extend(std::iter::repeat_n(v, self.max_history));
        } else {
            self.history.extend(std::iter::repeat_n(v, k));
            self.trim();
        }
    }
}

// Checkpoint serialization lives next to the fields it captures: the
// history buffer *is* the detector's memory, so a restored series must
// carry every accepted value plus the eligibility counters bit-for-bit.
impl rrr_store::Persist for MonitoredSeries {
    fn store<W: std::io::Write>(
        &self,
        e: &mut rrr_store::Encoder<W>,
    ) -> Result<(), rrr_store::StoreError> {
        self.history.store(e)?;
        self.consecutive.store(e)?;
        self.ready.store(e)?;
        self.max_history.store(e)?;
        self.absorb_outliers.store(e)
    }
    fn load<R: std::io::Read>(
        d: &mut rrr_store::Decoder<R>,
    ) -> Result<Self, rrr_store::StoreError> {
        Ok(MonitoredSeries {
            history: rrr_store::Persist::load(d)?,
            consecutive: rrr_store::Persist::load(d)?,
            ready: rrr_store::Persist::load(d)?,
            max_history: rrr_store::Persist::load(d)?,
            absorb_outliers: rrr_store::Persist::load(d)?,
        })
    }
}

/// Candidate window durations for traceroute-derived series (§4.2.1):
/// 15 minutes up to 24 hours.
pub const WINDOW_CANDIDATES: &[Duration] = &[
    Duration::minutes(15),
    Duration::minutes(30),
    Duration::hours(1),
    Duration::hours(2),
    Duration::hours(4),
    Duration::hours(8),
    Duration::hours(12),
    Duration::hours(24),
];

/// Selects the smallest candidate duration for which the observation
/// timestamps contain at least [`MIN_WINDOWS`] *consecutive* populated
/// windows (§4.2.1). Returns `None` when even 24-hour windows cannot
/// satisfy the rule.
pub fn choose_window_duration(timestamps: &[Timestamp]) -> Option<Duration> {
    if timestamps.is_empty() {
        return None;
    }
    for &d in WINDOW_CANDIDATES {
        let cfg = WindowConfig::new(d);
        let mut windows: Vec<Window> = timestamps.iter().map(|&t| cfg.window_of(t)).collect();
        windows.sort_unstable();
        windows.dedup();
        let mut run = 1usize;
        for w in windows.windows(2) {
            if w[1].index() == w[0].index() + 1 {
                run += 1;
            } else {
                run = 1;
            }
            if run >= MIN_WINDOWS {
                return Some(d);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModifiedZScore;

    #[test]
    fn not_ready_until_twenty_consecutive() {
        let det = ModifiedZScore::default();
        let mut s = MonitoredSeries::default();
        for i in 0..19 {
            assert_eq!(s.push(Some(1.0 + (i % 2) as f64 * 0.01), &det), SeriesVerdict::NotReady);
            assert!(!s.ready());
        }
        assert_eq!(s.push(Some(1.0), &det), SeriesVerdict::NotReady);
        assert!(s.ready());
        assert_eq!(s.push(Some(1.0), &det), SeriesVerdict::Normal);
    }

    #[test]
    fn missing_resets_eligibility_run() {
        let det = ModifiedZScore::default();
        let mut s = MonitoredSeries::default();
        for _ in 0..15 {
            s.push(Some(1.0), &det);
        }
        assert_eq!(s.push(None, &det), SeriesVerdict::NotReady);
        for _ in 0..19 {
            assert!(!s.ready());
            s.push(Some(1.0), &det);
        }
        // 19 after the gap: one more makes 20 consecutive.
        assert!(!s.ready());
        s.push(Some(1.0), &det);
        assert!(s.ready());
    }

    #[test]
    fn missing_after_ready_is_missing_not_outlier() {
        let det = ModifiedZScore::default();
        let mut s = MonitoredSeries::default();
        for i in 0..25 {
            s.push(Some(1.0 + 0.01 * ((i % 3) as f64)), &det);
        }
        assert!(s.ready());
        assert_eq!(s.push(None, &det), SeriesVerdict::Missing);
        assert!(s.ready(), "eligibility survives gaps once established");
    }

    #[test]
    fn outlier_not_appended_so_persistent_shift_keeps_firing() {
        let det = ModifiedZScore::default();
        let mut s = MonitoredSeries::default();
        for i in 0..30 {
            s.push(Some(1.0 + 0.01 * ((i % 3) as f64)), &det);
        }
        // A persistent level shift to 0.0 keeps registering.
        for _ in 0..10 {
            let v = s.push(Some(0.0), &det);
            assert!(v.is_outlier(), "stationarity removal failed: {v:?}");
        }
        // And normal values still pass.
        assert_eq!(s.push(Some(1.0), &det), SeriesVerdict::Normal);
    }

    #[test]
    fn absorbing_mode_stops_refiring_on_level_shift() {
        let det = ModifiedZScore::default();
        let mut s = MonitoredSeries::new(128).with_absorb_outliers(true);
        for i in 0..30 {
            s.push(Some(1.0 + 0.01 * ((i % 3) as f64)), &det);
        }
        // Once absorbed zeros dominate the history the detector adapts and
        // stops flagging the new level — unlike the default (stationarity-
        // preserving) mode, which would fire on every one of these.
        let mut fired = 0;
        for _ in 0..45 {
            if s.push(Some(0.0), &det).is_outlier() {
                fired += 1;
            }
        }
        assert!(fired >= 1, "the shift itself must fire");
        assert!(fired < 40, "absorbed level shift must eventually stop firing");
    }

    #[test]
    fn history_bounded() {
        let det = ModifiedZScore::default();
        let mut s = MonitoredSeries::new(32);
        for i in 0..200 {
            s.push(Some((i % 7) as f64), &det);
        }
        assert!(s.history().len() <= 32);
        assert_eq!(s.last_value(), Some((199 % 7) as f64));
    }

    #[test]
    fn choose_window_small_gap_free_series() {
        // One observation every 15 minutes for 6 hours: 24 populated
        // 15-minute windows → the smallest candidate wins.
        let ts: Vec<Timestamp> = (0..24).map(|i| Timestamp(i * 900)).collect();
        assert_eq!(choose_window_duration(&ts), Some(Duration::minutes(15)));
    }

    #[test]
    fn choose_window_sparse_series_needs_wider_window() {
        // One observation every 2 hours: 15-minute windows can't give 20
        // consecutive, 2-hour windows can.
        let ts: Vec<Timestamp> = (0..40).map(|i| Timestamp(i * 7200)).collect();
        let d = choose_window_duration(&ts).expect("2h windows qualify");
        assert!(d >= Duration::hours(2));
        assert!(d <= Duration::hours(24));
    }

    #[test]
    fn choose_window_hopeless_series() {
        // Observations 3 days apart: even 24h windows lack 20 consecutive.
        let ts: Vec<Timestamp> = (0..10).map(|i| Timestamp(i * 3 * 86_400)).collect();
        assert_eq!(choose_window_duration(&ts), None);
        assert_eq!(choose_window_duration(&[]), None);
    }
}
