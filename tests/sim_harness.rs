//! End-to-end exercise of the fault-injection simulation harness: the
//! whole `tests/scenarios/` corpus must pass, and a deliberately
//! corrupted checkpoint must fail with a minimized fault plan and a
//! replayable artifact that reproduces the identical failure.

use rrr_sim::{
    load_corpus, load_scenario_or_artifact, run_scenario, Fault, Oracle, RunOptions, Scenario,
};
use std::path::{Path, PathBuf};

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/scenarios")
}

#[test]
fn the_scenario_corpus_passes() {
    let corpus = load_corpus(&scenarios_dir()).expect("corpus loads");
    assert!(corpus.len() >= 10, "corpus holds {} scenarios, want >= 10", corpus.len());

    // The corpus must keep covering the fault families the harness exists
    // for; deleting a family silently would hollow the suite out.
    let all_faults: String =
        corpus.iter().flat_map(|sc| &sc.faults).map(|f| format!("{f:?}\n")).collect();
    for family in [
        "ReorderWindow",
        "DropUpdates",
        "DuplicateBurst",
        "TruncateWalTail",
        "FlipWalByte",
        "FlipCheckpointByte",
        "FlipDeltaByte",
        "DropDeltaFrame",
        "TruncateDeltaTail",
    ] {
        assert!(all_faults.contains(family), "no scenario injects {family}");
    }
    assert!(
        corpus.iter().any(|sc| sc.oracles.iter().any(|o| o.name() == "crash-resume")),
        "no scenario exercises crash-resume"
    );

    let opts = RunOptions { base_threads: 1, artifact_dir: None, minimize: false };
    let mut failed = Vec::new();
    for sc in &corpus {
        let outcome = run_scenario(sc, &opts);
        if let Some(f) = outcome.failure {
            failed.push(format!("{}: [{}] {}", outcome.name, f.oracle, f.message));
        }
    }
    assert!(failed.is_empty(), "failing scenarios:\n{}", failed.join("\n"));
}

/// Corpus-coverage meta-test: every oracle and every fault constructor
/// the harness defines must be exercised by at least one scenario in
/// `tests/scenarios/`. Adding a variant without corpus coverage — or
/// deleting the last scenario that covers one — fails here by name, so
/// the suite cannot hollow out silently. (The lists come from
/// `Oracle::ALL_NAMES` / `Fault::ALL_NAMES`, which their `from_value`
/// parsers are checked against, so a new variant cannot dodge this test
/// by being left off the list.)
#[test]
fn the_corpus_exercises_every_oracle_and_fault_constructor() {
    let corpus = load_corpus(&scenarios_dir()).expect("corpus loads");
    let oracles: std::collections::HashSet<&str> =
        corpus.iter().flat_map(|sc| &sc.oracles).map(|o| o.name()).collect();
    for name in Oracle::ALL_NAMES {
        assert!(oracles.contains(name), "no scenario in tests/scenarios/ runs oracle `{name}`");
    }
    let faults: std::collections::HashSet<&str> =
        corpus.iter().flat_map(|sc| &sc.faults).map(|f| f.name()).collect();
    for name in Fault::ALL_NAMES {
        assert!(faults.contains(name), "no scenario in tests/scenarios/ injects fault `{name}`");
    }
}

#[test]
fn corrupting_a_checkpoint_byte_yields_a_minimized_replayable_artifact() {
    let sc = Scenario::parse(
        r#"Scenario(
            name: "harness-corruption",
            seed: 4242,
            world: Micro,
            rounds: 8,
            faults: [
                ReorderWindow(round: 1),
                ClockSkew(round: 2, vp: 0, secs: 250),
                FlipCheckpointByte(offset: 80),
                DuplicateUpdates(round: 5, copies: 2),
            ],
            oracles: [CrashResume(split: 4), Invariants],
        )"#,
    )
    .expect("scenario parses");

    let dir = std::env::temp_dir().join(format!("rrr-sim-harness-{}", std::process::id()));
    let opts = RunOptions { base_threads: 1, artifact_dir: Some(dir.clone()), minimize: true };
    let outcome = run_scenario(&sc, &opts);
    let failure = outcome.failure.expect("the corrupted checkpoint must fail crash-resume");
    assert_eq!(failure.oracle, "crash-resume");
    assert!(failure.message.contains("CrcMismatch"), "{}", failure.message);

    // Minimization strips the three stream faults that play no part in the
    // failure, leaving exactly the corrupting byte flip.
    assert_eq!(
        failure.minimized,
        vec![rrr_sim::Fault::FlipCheckpointByte { offset: 80 }],
        "minimizer should isolate the corrupting fault"
    );

    // The artifact replays to the identical failure.
    let artifact = failure.artifact.expect("an artifact is written");
    let repro = load_scenario_or_artifact(&artifact).expect("artifact loads");
    assert_eq!(repro.seed, sc.seed);
    assert_eq!(repro.faults, failure.minimized);
    let replay =
        run_scenario(&repro, &RunOptions { base_threads: 1, artifact_dir: None, minimize: false });
    let replay_failure = replay.failure.expect("replay reproduces the failure");
    assert_eq!(replay_failure.oracle, failure.oracle);
    assert_eq!(replay_failure.message, failure.message, "replay is bit-deterministic");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn expected_store_errors_pass_and_unexpected_success_fails() {
    // The same fault with the right expectation is a pass...
    let expected = Scenario::parse(
        r#"Scenario(
            name: "harness-expected",
            seed: 7,
            rounds: 6,
            faults: [BadMagicCheckpoint],
            oracles: [CrashResume(split: 3)],
            expect: StoreError(kind: "BadMagic"),
        )"#,
    )
    .expect("parses");
    let opts = RunOptions::default();
    assert!(run_scenario(&expected, &opts).passed());

    // ...and an expectation that nothing fulfills is itself a failure.
    let unfulfilled = Scenario::parse(
        r#"Scenario(
            name: "harness-unfulfilled",
            seed: 7,
            rounds: 6,
            oracles: [CrashResume(split: 3)],
            expect: StoreError(kind: "BadMagic"),
        )"#,
    )
    .expect("parses");
    let outcome = run_scenario(&unfulfilled, &RunOptions { artifact_dir: None, ..opts });
    let failure = outcome.failure.expect("unfulfilled expectation fails");
    assert!(failure.message.contains("reopen succeeded"), "{}", failure.message);
}
