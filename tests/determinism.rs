//! Serial-vs-parallel equivalence: the sharded window-close / flush
//! pipeline must produce bit-identical output to the serial path.
//!
//! The shards are deterministic — groups are split in sorted-key order and
//! each worker's output is concatenated in chunk order — so the signal log
//! and the refresh plan must not depend on the worker count at all.

use rrr::prelude::*;
use std::sync::Arc;

fn run_with_threads(threads: usize) -> (Vec<StalenessSignal>, RefreshPlan) {
    let seed = 17;
    let topo = Arc::new(rrr::topology::generate(&TopologyConfig::small(seed)));
    let events = rrr::bgp::generate_events(&topo, &EventConfig::small(seed, Duration::days(2)));
    let mut engine =
        rrr::bgp::Engine::new(Arc::clone(&topo), &EngineConfig { seed, num_vps: 10 }, events);
    let mut platform = Platform::new(&topo, &PlatformConfig::small(seed));
    let rib = engine.rib_snapshot();
    let mut map = IpToAsMap::from_announcements(rib.iter());
    for (ixp, lan) in &topo.registry.ixp_lans {
        map.add_ixp_lan(*lan, *ixp);
    }
    let geo = Geolocator::new(GeoDb::noisy(&topo, 0.9, 0.95, seed), vec![]);
    let alias = AliasResolver::from_topology(&topo, 0.1, seed);
    let vps = engine.vps().iter().map(|v| v.id).collect();
    let mut det = StalenessDetector::new(
        Arc::clone(&topo),
        map,
        geo,
        alias,
        vps,
        DetectorConfig { threads, ..DetectorConfig::default() },
    );
    det.init_rib(&rib);
    for tr in platform.anchoring_round(&engine, Timestamp::ZERO) {
        let src_asn = topo.asn_of(platform.probe(tr.probe).asx);
        det.add_corpus(tr, Some(src_asn));
    }
    for r in 1..=(2 * 96u64) {
        let t = Timestamp(r * 900);
        let updates = engine.advance_to(t);
        let public = platform.random_round(&engine, t, 60);
        let _ = det.step(t, &updates, &public);
    }
    let plan = det.plan_refresh(16);
    (det.signal_log().to_vec(), plan)
}

/// Thread count must be invisible in the output: same signals, same order,
/// same refresh plan.
#[test]
fn parallel_pipeline_matches_serial() {
    let (serial_log, serial_plan) = run_with_threads(1);
    let (par_log, par_plan) = run_with_threads(4);
    assert!(
        !serial_log.is_empty(),
        "the scenario must generate signals for the comparison to mean anything"
    );
    assert_eq!(serial_log.len(), par_log.len(), "signal counts diverged");
    for (i, (s, p)) in serial_log.iter().zip(&par_log).enumerate() {
        assert_eq!(s.key, p.key, "signal {i} key diverged");
        assert_eq!(s.time, p.time, "signal {i} time diverged");
        assert_eq!(s.window, p.window, "signal {i} window diverged");
        assert_eq!(s.traceroutes, p.traceroutes, "signal {i} traceroutes diverged");
        assert!((s.score - p.score).abs() < 1e-12, "signal {i} score diverged");
    }
    assert_eq!(serial_plan, par_plan, "refresh plans diverged");
}

/// An odd worker count that doesn't divide the shard count evenly must
/// still match (exercises the ragged last chunk).
#[test]
fn ragged_shard_split_matches_serial() {
    let (serial_log, _) = run_with_threads(1);
    let (par_log, _) = run_with_threads(3);
    assert_eq!(serial_log.len(), par_log.len());
    for (s, p) in serial_log.iter().zip(&par_log) {
        assert_eq!(s.key, p.key);
        assert_eq!(s.traceroutes, p.traceroutes);
    }
}
