//! Property: the serving daemon is indistinguishable from batch replay.
//!
//! For any scripted micro scenario (random seed, round count, routing
//! event, and delivery fault), and for 1, 2, and 8 concurrent feeds, every
//! snapshot the daemon publishes at epoch E must answer `IsStale` and
//! `PrefixSummary` (and the whole-corpus tallies) bit-identically to a
//! fresh batch detector replayed over the same rounds up to window E.

use proptest::prelude::*;
use rrr_core::Query;
use rrr_serve::{
    answer, replay_reference, split_rounds, Daemon, DaemonConfig, Engine, FeedSource, ScriptedFeed,
    StalenessQuery,
};
use rrr_sim::{feed_batches, Expect, Fault, Scenario, SimEvent, SimWorld, WorldKind};

fn micro_scenario(seed: u64, rounds: u64, event_kind: u8, fault_kind: u8) -> Scenario {
    let span = rounds.max(4);
    let event = match event_kind % 3 {
        0 => SimEvent::CommunityFlip { from: 1, to: span - 1, dst: 0, variant: 1 },
        1 => SimEvent::RouteChange { from: 2, to: span, dst: 1 },
        _ => SimEvent::Withdraw { from: 2, to: span - 1, dst: 0 },
    };
    let faults = match fault_kind % 3 {
        0 => vec![],
        1 => vec![Fault::ReorderWindow { round: span / 2 }],
        _ => vec![Fault::DuplicateUpdates { round: span / 2, copies: 2 }],
    };
    Scenario {
        name: format!("prop-serve-{seed}"),
        seed,
        world: WorldKind::Micro,
        rounds: span,
        events: vec![event],
        faults,
        oracles: vec![],
        expect: Expect::Pass,
        half_steps: false,
        weather: None,
        source: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn daemon_snapshots_answer_like_batch_replay(
        seed in 0u64..10_000,
        rounds in 4u64..9,
        event_kind in 0u8..3,
        fault_kind in 0u8..3,
    ) {
        let sc = micro_scenario(seed, rounds, event_kind, fault_kind);
        let (world, mut steps) = SimWorld::from_scenario(&sc);
        for f in &sc.faults {
            f.apply_stream(&mut steps, sc.seed);
        }
        let batches = feed_batches(&steps);
        let (_, ref_snaps) = replay_reference(world.build(1), &batches);

        for feeds in [1usize, 2, 8] {
            let sources: Vec<Box<dyn FeedSource>> = split_rounds(&batches, feeds)
                .into_iter()
                .map(|b| Box::new(ScriptedFeed::new(b)) as Box<dyn FeedSource>)
                .collect();
            let daemon = Daemon::spawn(
                Engine::Plain(world.build(1)),
                sources,
                DaemonConfig { channel_capacity: 1, record_snapshots: true, ..DaemonConfig::default() },
            );
            let report = match daemon.join() {
                Ok(r) => r,
                Err(e) => panic!("daemon failed with {feeds} feeds: {e}"),
            };
            prop_assert_eq!(
                report.snapshots.len(),
                ref_snaps.len(),
                "snapshot count with {} feeds",
                feeds
            );
            for (got, want) in report.snapshots.iter().zip(&ref_snaps) {
                prop_assert_eq!(got.epoch(), want.epoch());
                let mut ids = got.ids();
                ids.extend(want.ids());
                ids.sort_unstable();
                ids.dedup();
                for id in ids {
                    let q = StalenessQuery::IsStale(id);
                    prop_assert_eq!(
                        answer(&**got, &q),
                        answer(&**want, &q),
                        "IsStale({:?}) at epoch {} with {} feeds",
                        id, got.epoch(), feeds
                    );
                }
                let mut prefixes: Vec<_> = got.prefixes().chain(want.prefixes()).collect();
                prefixes.sort_unstable();
                prefixes.dedup();
                for p in prefixes {
                    let q = StalenessQuery::PrefixSummary(p);
                    prop_assert_eq!(
                        answer(&**got, &q),
                        answer(&**want, &q),
                        "PrefixSummary({}) at epoch {} with {} feeds",
                        p, got.epoch(), feeds
                    );
                }
                let q = StalenessQuery::CorpusSummary;
                prop_assert_eq!(answer(&**got, &q), answer(&**want, &q));
            }
        }
    }
}
