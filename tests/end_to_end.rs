//! Cross-crate integration tests: the full pipeline from topology through
//! control plane, data plane, inference tools, and the staleness detector.

use rrr::prelude::*;
use rrr::topology::{AsIdx, IpOwner};
use std::sync::Arc;

struct TestWorld {
    topo: Arc<Topology>,
    engine: rrr::bgp::Engine,
    platform: Platform,
    det: StalenessDetector,
}

fn world(seed: u64, days: u64) -> TestWorld {
    let topo = Arc::new(rrr::topology::generate(&TopologyConfig::small(seed)));
    let events = rrr::bgp::generate_events(&topo, &EventConfig::small(seed, Duration::days(days)));
    let engine =
        rrr::bgp::Engine::new(Arc::clone(&topo), &EngineConfig { seed, num_vps: 10 }, events);
    let platform = Platform::new(&topo, &PlatformConfig::small(seed));
    let rib = engine.rib_snapshot();
    let mut map = IpToAsMap::from_announcements(rib.iter());
    for (ixp, lan) in &topo.registry.ixp_lans {
        map.add_ixp_lan(*lan, *ixp);
    }
    let geo = Geolocator::new(GeoDb::noisy(&topo, 0.9, 0.95, seed), vec![]);
    let alias = AliasResolver::from_topology(&topo, 0.1, seed);
    let vps = engine.vps().iter().map(|v| v.id).collect();
    let mut det =
        StalenessDetector::new(Arc::clone(&topo), map, geo, alias, vps, DetectorConfig::default());
    det.init_rib(&rib);
    TestWorld { topo, engine, platform, det }
}

/// Control plane and data plane must agree: the AS path a traceroute
/// traverses equals the VP-style chain the route table yields.
#[test]
fn control_and_data_plane_agree() {
    let mut w = world(3, 1);
    let anchor = w.platform.anchors[0];
    for pid in w.platform.mesh_probes(anchor.id).to_vec() {
        let tr = w.platform.measure(&w.engine, pid, anchor.addr, Timestamp::ZERO);
        assert!(tr.reached);
        let probe = w.platform.probe(pid);
        let dst_as = match w.topo.owner_of_ip(anchor.addr) {
            IpOwner::As(a) => a,
            other => panic!("anchor outside plan: {other:?}"),
        };
        let chain = w.engine.routes().as_chain(dst_as, probe.asx).expect("routable");
        // Map the traceroute through the measured IP-to-AS map.
        let at = rrr::ip2as::map_traceroute(&tr, w.det.map(), Some(w.topo.asn_of(probe.asx)))
            .expect("no loops");
        let chain_asns: Vec<Asn> = chain.iter().map(|a| w.topo.asn_of(*a)).collect();
        assert_eq!(at.path, chain_asns, "trace {tr}");
    }
}

/// The measured IP-to-AS map (built from collector announcements) must
/// agree with the topology's address plan for originated space.
#[test]
fn measured_map_matches_plan() {
    let w = world(5, 1);
    for i in 0..w.topo.num_ases() {
        let info = w.topo.as_info(AsIdx(i as u32));
        for p in &info.originated {
            let probe_addr = p.nth(1);
            match w.det.map().lookup(probe_addr) {
                Some(rrr::ip2as::IpOrigin::As(a)) => assert_eq!(a, info.asn),
                other => panic!("unmapped originated space {probe_addr}: {other:?}"),
            }
        }
    }
}

/// Full-loop staleness: force a decisive egress shift on a monitored
/// adjacency and verify a signal eventually flags the corpus entry, with
/// refresh verification confirming the change.
#[test]
fn forced_border_change_is_flagged() {
    use rrr::bgp::{Event, EventKind};
    let seed = 9;
    let topo = Arc::new(rrr::topology::generate(&TopologyConfig::small(seed)));
    // Hand-crafted schedule: day 2, demote the preferred point of every
    // multi-point adjacency (guaranteeing border-level changes).
    let mut events = Vec::new();
    for adj in topo.adjacencies.iter().filter(|a| a.points.len() >= 2 && !a.ecmp && !a.latent) {
        events.push(Event {
            time: Timestamp(Duration::days(2).as_secs()),
            kind: EventKind::BiasShift { point: adj.points[0], side_a: true, bias: 1000 },
        });
    }
    assert!(!events.is_empty());
    let mut engine =
        rrr::bgp::Engine::new(Arc::clone(&topo), &EngineConfig { seed, num_vps: 10 }, events);
    let mut platform = Platform::new(&topo, &PlatformConfig::small(seed));
    let rib = engine.rib_snapshot();
    let mut map = IpToAsMap::from_announcements(rib.iter());
    for (ixp, lan) in &topo.registry.ixp_lans {
        map.add_ixp_lan(*lan, *ixp);
    }
    let geo = Geolocator::new(GeoDb::noisy(&topo, 0.95, 0.98, seed), vec![]);
    let alias = AliasResolver::from_topology(&topo, 0.05, seed);
    let vps = engine.vps().iter().map(|v| v.id).collect();
    let mut det =
        StalenessDetector::new(Arc::clone(&topo), map, geo, alias, vps, DetectorConfig::default());
    det.init_rib(&rib);

    let mut ids = Vec::new();
    for tr in platform.anchoring_round(&engine, Timestamp::ZERO) {
        let src_asn = topo.asn_of(platform.probe(tr.probe).asx);
        if let Some(id) = det.add_corpus(tr, Some(src_asn)) {
            ids.push(id);
        }
    }

    let mut any_stale = false;
    for r in 1..=(3 * 96u64) {
        let t = Timestamp(r * 900);
        let updates = engine.advance_to(t);
        let public = platform.random_round(&engine, t, 80);
        let _ = det.step(t, &updates, &public);
        if det.corpus().entries().any(|e| e.freshness().is_stale()) {
            any_stale = true;
        }
    }
    assert!(any_stale, "mass egress demotion must flag some corpus entries");

    // Refresh verification: at least one flagged entry's re-measurement
    // confirms a changed monitored portion.
    let stale_ids: Vec<_> =
        det.corpus().entries().filter(|e| e.freshness().is_stale()).map(|e| e.id).collect();
    let t = Timestamp(3 * 86_400);
    let mut confirmed = 0;
    for id in stale_ids {
        let e = det.corpus().get(id).expect("entry");
        let (probe, dst) = (e.traceroute.probe, e.traceroute.dst);
        let fresh = platform.measure(&engine, probe, dst, t);
        if det.verify_signals(id, &fresh) {
            confirmed += 1;
        }
    }
    assert!(confirmed > 0, "no flagged change confirmed by refresh");
}

/// Revocation (§4.3.2): a change that reverts must eventually release the
/// staleness assertion via monitor reversion, without any refresh.
#[test]
fn reverted_change_revokes_without_refresh() {
    use rrr::bgp::{Event, EventKind};
    let seed = 13;
    let topo = Arc::new(rrr::topology::generate(&TopologyConfig::small(seed)));
    let adjs: Vec<_> =
        topo.adjacencies.iter().filter(|a| a.points.len() >= 2 && !a.ecmp && !a.latent).collect();
    let mut events = Vec::new();
    for adj in &adjs {
        // Demote on day 1, restore on day 2.
        events.push(Event {
            time: Timestamp(Duration::days(1).as_secs()),
            kind: EventKind::BiasShift { point: adj.points[0], side_a: true, bias: 1000 },
        });
        events.push(Event {
            time: Timestamp(Duration::days(2).as_secs()),
            kind: EventKind::BiasShift {
                point: adj.points[0],
                side_a: true,
                bias: topo.point(adj.points[0]).bias_a,
            },
        });
    }
    let mut engine =
        rrr::bgp::Engine::new(Arc::clone(&topo), &EngineConfig { seed, num_vps: 10 }, events);
    let mut platform = Platform::new(&topo, &PlatformConfig::small(seed));
    let rib = engine.rib_snapshot();
    let mut map = IpToAsMap::from_announcements(rib.iter());
    for (ixp, lan) in &topo.registry.ixp_lans {
        map.add_ixp_lan(*lan, *ixp);
    }
    let geo = Geolocator::new(GeoDb::noisy(&topo, 0.95, 0.98, seed), vec![]);
    let alias = AliasResolver::from_topology(&topo, 0.05, seed);
    let vps = engine.vps().iter().map(|v| v.id).collect();
    let mut det =
        StalenessDetector::new(Arc::clone(&topo), map, geo, alias, vps, DetectorConfig::default());
    det.init_rib(&rib);
    for tr in platform.anchoring_round(&engine, Timestamp::ZERO) {
        let src_asn = topo.asn_of(platform.probe(tr.probe).asx);
        det.add_corpus(tr, Some(src_asn));
    }

    let mut peak_stale = 0usize;
    for r in 1..=(4 * 96u64) {
        let t = Timestamp(r * 900);
        let updates = engine.advance_to(t);
        let public = platform.random_round(&engine, t, 80);
        let _ = det.step(t, &updates, &public);
        let stale = det.corpus().freshness_summary().stale;
        peak_stale = peak_stale.max(stale);
    }
    let stale_end = det.corpus().freshness_summary().stale;
    assert!(peak_stale > 0, "the demotion must flag entries");
    assert!(
        stale_end < peak_stale,
        "reversion must revoke some assertions: peak {peak_stale}, end {stale_end}"
    );
}

/// Determinism: two identical runs produce identical signal logs.
#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let mut w = world(21, 1);
        for tr in w.platform.anchoring_round(&w.engine, Timestamp::ZERO) {
            let src_asn = w.topo.asn_of(w.platform.probe(tr.probe).asx);
            w.det.add_corpus(tr, Some(src_asn));
        }
        let mut log = Vec::new();
        for r in 1..=48u64 {
            let t = Timestamp(r * 900);
            let updates = w.engine.advance_to(t);
            let public = w.platform.random_round(&w.engine, t, 60);
            log.extend(w.det.step(t, &updates, &public));
        }
        log
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.key, y.key);
        assert_eq!(x.time, y.time);
        assert_eq!(x.traceroutes, y.traceroutes);
    }
}
