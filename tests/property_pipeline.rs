//! Property-based integration tests over randomized worlds: invariants
//! that must hold for any seed.

use proptest::prelude::*;
use rrr::prelude::*;
use rrr::topology::{generate, AsIdx, Relationship};
use rrr::trace::canonical_path;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any generated topology routes every AS to every other AS with
    /// valley-free, loop-free paths.
    #[test]
    fn any_seed_routes_valley_free(seed in 0u64..500) {
        let topo = generate(&TopologyConfig::small(seed));
        let state = rrr::bgp::NetState::new(&topo);
        let routes = rrr::bgp::compute_routes(&topo, &state);
        for o in 0..topo.num_ases() {
            for x in 0..topo.num_ases() {
                let chain = routes
                    .as_chain(AsIdx(o as u32), AsIdx(x as u32))
                    .expect("connected graph");
                // loop-free
                let mut seen = std::collections::HashSet::new();
                for h in &chain {
                    prop_assert!(seen.insert(*h));
                }
                // valley-free
                let mut descended = false;
                for w in chain.windows(2) {
                    match topo.rel(w[0], w[1]).expect("adjacent") {
                        Relationship::Provider => prop_assert!(!descended),
                        Relationship::Peer => {
                            prop_assert!(!descended);
                            descended = true;
                        }
                        Relationship::Customer => descended = true,
                    }
                }
            }
        }
    }

    /// Synthesized traceroutes map back (through the *measured* IP-to-AS
    /// map) without loops, and their canonical ground truth agrees at the
    /// AS level.
    #[test]
    fn any_seed_traceroutes_map_cleanly(seed in 0u64..500) {
        let topo = Arc::new(generate(&TopologyConfig::small(seed)));
        let engine = rrr::bgp::Engine::new(
            Arc::clone(&topo),
            &EngineConfig { seed, num_vps: 6 },
            vec![],
        );
        let mut platform = Platform::new(&topo, &PlatformConfig::small(seed));
        let rib = engine.rib_snapshot();
        let mut map = IpToAsMap::from_announcements(rib.iter());
        for (ixp, lan) in &topo.registry.ixp_lans {
            map.add_ixp_lan(*lan, *ixp);
        }
        let anchor = platform.anchors[0];
        for pid in platform.mesh_probes(anchor.id).to_vec() {
            let tr = platform.measure(&engine, pid, anchor.addr, Timestamp::ZERO);
            prop_assert!(tr.reached);
            prop_assert!(!tr.has_ip_loop());
            let probe = platform.probe(pid);
            let at = rrr::ip2as::map_traceroute(&tr, &map, Some(topo.asn_of(probe.asx)))
                .expect("no AS loops in synthesized traces");
            let canon = canonical_path(
                &topo,
                engine.state(),
                engine.routes(),
                probe.asx,
                probe.city,
                anchor.addr,
            )
            .expect("in plan");
            let canon_asns: Vec<Asn> =
                canon.as_chain.iter().map(|a| topo.asn_of(*a)).collect();
            // An AS whose only visible hop carries a neighbor's link-subnet
            // address can be invisible to longest-prefix mapping (the
            // third-party-address problem bdrmapIT tackles); the mapped
            // path must still be an order-preserving subsequence of the
            // true chain with the same endpoints, and may never invent
            // off-path ASes.
            prop_assert_eq!(at.path.first(), canon_asns.first());
            prop_assert_eq!(at.path.last(), canon_asns.last());
            let mut it = canon_asns.iter();
            for hop in &at.path {
                prop_assert!(
                    it.any(|c| c == hop),
                    "mapped hop {:?} not on true chain {:?} (mapped {:?})",
                    hop, canon_asns, at.path
                );
            }
        }
    }

    /// The MRT round-trip is lossless for any simulated update stream.
    #[test]
    fn any_seed_mrt_roundtrip(seed in 0u64..500) {
        use rrr::mrt::{record_to_updates, MrtReader, MrtWriter, VpDirectory};
        let topo = Arc::new(generate(&TopologyConfig::small(seed)));
        let events = rrr::bgp::generate_events(
            &topo,
            &EventConfig::small(seed, Duration::hours(12)),
        );
        let mut engine = rrr::bgp::Engine::new(
            Arc::clone(&topo),
            &EngineConfig { seed, num_vps: 6 },
            events,
        );
        let mut dir = VpDirectory::default();
        for vp in engine.vps() {
            dir.register(vp.id, topo.asn_of(vp.asx));
        }
        let updates = engine.advance_to(Timestamp(Duration::hours(12).as_secs()));
        let mut w = MrtWriter::new();
        for u in &updates {
            w.write_update(&dir, u);
        }
        let bytes = w.into_bytes();
        let mut decoded = Vec::new();
        for rec in MrtReader::new(&bytes) {
            decoded.extend(record_to_updates(&dir, &rec.expect("well-formed")));
        }
        prop_assert_eq!(decoded, updates);
    }
}
