//! Metrics must be provably inert: enabling the `rrr-obs` registry may
//! not perturb one bit of detector output. Metric state lives entirely
//! outside detector state — it is never checkpointed and never part of
//! the config fingerprint — so a metrics-on run and a metrics-off run
//! over the same input must produce bit-identical signal logs, refresh
//! plans, and checkpoint bytes, at every worker count.

use rrr::prelude::*;
use rrr_core::{Metrics, PartitionMap, PartitionedDetector};
use std::sync::Arc;

const ROUNDS: u64 = 96;

fn build_detector(threads: usize) -> (StalenessDetector, Engine, Platform) {
    let seed = 17;
    let topo = Arc::new(rrr::topology::generate(&TopologyConfig::small(seed)));
    let events = rrr::bgp::generate_events(&topo, &EventConfig::small(seed, Duration::days(2)));
    let engine =
        rrr::bgp::Engine::new(Arc::clone(&topo), &EngineConfig { seed, num_vps: 10 }, events);
    let mut platform = Platform::new(&topo, &PlatformConfig::small(seed));
    let rib = engine.rib_snapshot();
    let mut map = IpToAsMap::from_announcements(rib.iter());
    for (ixp, lan) in &topo.registry.ixp_lans {
        map.add_ixp_lan(*lan, *ixp);
    }
    let geo = Geolocator::new(GeoDb::noisy(&topo, 0.9, 0.95, seed), vec![]);
    let alias = AliasResolver::from_topology(&topo, 0.1, seed);
    let vps = engine.vps().iter().map(|v| v.id).collect();
    let mut det = StalenessDetector::new(
        Arc::clone(&topo),
        map,
        geo,
        alias,
        vps,
        DetectorConfig { threads, ..DetectorConfig::default() },
    );
    det.init_rib(&rib);
    for tr in platform.anchoring_round(&engine, Timestamp::ZERO) {
        let src_asn = topo.asn_of(platform.probe(tr.probe).asx);
        det.add_corpus(tr, Some(src_asn));
    }
    (det, engine, platform)
}

/// Drives one full run, returning everything that must be invariant under
/// instrumentation: the signal log, a mid-run and final refresh plan, and
/// the final checkpoint bytes.
fn run(threads: usize, metrics: &Metrics) -> (Vec<StalenessSignal>, Vec<RefreshPlan>, Vec<u8>) {
    let (mut det, mut engine, mut platform) = build_detector(threads);
    det.set_metrics(metrics);
    let mut plans = Vec::new();
    for r in 1..=ROUNDS {
        let t = Timestamp(r * 900);
        let updates = engine.advance_to(t);
        let public = platform.random_round(&engine, t, 60);
        let _ = det.step(t, &updates, &public);
        if r == ROUNDS / 2 {
            plans.push(det.plan_refresh(16));
        }
    }
    plans.push(det.plan_refresh(16));
    let mut ckpt = Vec::new();
    det.checkpoint(&mut ckpt).expect("checkpoint to memory");
    (det.signal_log().to_vec(), plans, ckpt)
}

/// The tentpole property: for every worker count, a metrics-on run is
/// bit-identical to a metrics-off run — same signals, same plans, same
/// checkpoint bytes — while the registry itself proves the run was
/// actually observed (non-zero counters, so the check is not vacuous).
#[test]
fn enabled_metrics_change_nothing() {
    for threads in [1usize, 2, 8] {
        let off = Metrics::disabled();
        let on = Metrics::enabled();
        let (log_off, plans_off, ckpt_off) = run(threads, &off);
        let (log_on, plans_on, ckpt_on) = run(threads, &on);
        assert!(!log_off.is_empty(), "scenario must generate signals, threads={threads}");
        assert_eq!(log_off, log_on, "signal log diverged, threads={threads}");
        assert_eq!(plans_off, plans_on, "refresh plans diverged, threads={threads}");
        assert_eq!(ckpt_off, ckpt_on, "checkpoint bytes diverged, threads={threads}");

        let snap = on.snapshot();
        assert_eq!(
            snap.counter("rrr_detector_steps_total"),
            ROUNDS,
            "every step must be counted, threads={threads}"
        );
        assert!(
            snap.counter("rrr_detector_bgp_windows_closed_total") > 0,
            "windows closed while instrumented, threads={threads}"
        );
        assert_eq!(
            snap.counter("rrr_detector_signals_total"),
            log_on.len() as u64,
            "signal counter must equal the log length, threads={threads}"
        );
        assert_eq!(snap.counter("rrr_detector_plan_refresh_total"), 2, "threads={threads}");
        // And the off-handle recorded nothing at all.
        assert!(off.snapshot().counters.is_empty(), "disabled registry must stay empty");
    }
}

/// Same property for the N-partition facade: instrumentation (including
/// the per-partition labeled series) must not perturb the canonical
/// merged state.
#[test]
fn partitioned_metrics_change_nothing() {
    let canonical = |metrics: &Metrics| {
        let seed = 17;
        let topo = Arc::new(rrr::topology::generate(&TopologyConfig::small(seed)));
        let events = rrr::bgp::generate_events(&topo, &EventConfig::small(seed, Duration::days(2)));
        let mut engine =
            rrr::bgp::Engine::new(Arc::clone(&topo), &EngineConfig { seed, num_vps: 10 }, events);
        let mut platform = Platform::new(&topo, &PlatformConfig::small(seed));
        let rib = engine.rib_snapshot();
        // `IpToAsMap` is not `Clone`; each partition rebuilds it from the
        // same RIB, which is deterministic.
        let build_one = |threads: usize| {
            let mut map = IpToAsMap::from_announcements(rib.iter());
            for (ixp, lan) in &topo.registry.ixp_lans {
                map.add_ixp_lan(*lan, *ixp);
            }
            let geo = Geolocator::new(GeoDb::noisy(&topo, 0.9, 0.95, seed), vec![]);
            let alias = AliasResolver::from_topology(&topo, 0.1, seed);
            let vps = engine.vps().iter().map(|v| v.id).collect();
            StalenessDetector::new(
                Arc::clone(&topo),
                map,
                geo,
                alias,
                vps,
                DetectorConfig { threads, ..DetectorConfig::default() },
            )
        };
        let mid = Ipv4::new(128, 0, 0, 0).value();
        let pmap = PartitionMap::from_splits(vec![mid]).expect("valid split");
        let mut pd = PartitionedDetector::from_factory(pmap, |_| build_one(1));
        // Routed by the partition map — each partition owns its RIB slice.
        pd.init_rib(&rib);
        pd.set_metrics(metrics);
        for tr in platform.anchoring_round(&engine, Timestamp::ZERO) {
            let src_asn = topo.asn_of(platform.probe(tr.probe).asx);
            pd.add_corpus(tr, Some(src_asn));
        }
        for r in 1..=ROUNDS / 2 {
            let t = Timestamp(r * 900);
            let updates = engine.advance_to(t);
            let public = platform.random_round(&engine, t, 60);
            let _ = pd.step(t, &updates, &public);
        }
        pd.canonical_bytes().expect("canonical bytes")
    };
    let on = Metrics::enabled();
    let bytes_off = canonical(&Metrics::disabled());
    let bytes_on = canonical(&on);
    assert_eq!(bytes_off, bytes_on, "partitioned canonical state diverged under metrics");
    let snap = on.snapshot();
    assert_eq!(snap.counter("rrr_partition_steps_total"), ROUNDS / 2);
    assert_eq!(
        snap.counter("rrr_detector_steps_total{part=\"0\"}")
            + snap.counter("rrr_detector_steps_total{part=\"1\"}"),
        2 * (ROUNDS / 2),
        "each partition steps every round"
    );
    assert_eq!(
        snap.counter_family("rrr_partition_routed_updates_total"),
        snap.counter("rrr_partition_updates_total"),
        "routed series must sum to the total"
    );
}
